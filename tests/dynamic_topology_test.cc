// Dynamic geo-topology: latency drift, DC join/leave and the online
// tree-reconfiguration control loop.
//
// The world the static experiments assume away — a latency matrix that
// changes while the system runs — is exercised here end to end:
//
//   * drift plans parse, print and schedule (fault/drift_plan.h);
//   * the TopologyMonitor's probe plane converges on drifted latencies;
//   * the RTT-adaptive failure detector tolerates a 3x latency ramp that
//     falsely trips the static timeout (the regression this plane exists
//     to prevent);
//   * sustained drift degrades the deployed tree, the controller re-solves on
//     *measured* latencies and performs a live epoch switch with zero label
//     loss and no causality violation, converging to the visibility a freshly
//     deployed cluster achieves on the same (drifted) world;
//   * a datacenter joins mid-run — bootstrapped through timestamp mode until
//     caught up — and reaches full causal visibility;
//   * a datacenter leaves gracefully — clients stopped, labels drained,
//     detached — while the stayers keep streaming;
//   * a uniform slowdown (no better tree exists) re-anchors the trigger
//     baseline instead of churning the tree.
#include <gtest/gtest.h>

#include <string>

#include "src/fault/drift_plan.h"
#include "src/saturn/topology_monitor.h"
#include "tests/test_util.h"

namespace saturn {
namespace {

// --- Drift plans -----------------------------------------------------------

TEST(DriftPlan, ParsesSortsAndPrints) {
  DriftPlan plan;
  std::string error;
  ASSERT_TRUE(ParseDriftPlan(
      "4000:join:3;1000:ramp:3-5:240:2000;100:stepone:1-2:50;5000:leave:2", &plan,
      &error))
      << error;
  ASSERT_EQ(plan.events.size(), 4u);
  // Normalized: sorted by time.
  EXPECT_EQ(plan.events[0].at, Millis(100));
  EXPECT_EQ(plan.events[0].kind, DriftKind::kStepOneWay);
  EXPECT_EQ(plan.events[0].site_a, 1u);
  EXPECT_EQ(plan.events[0].site_b, 2u);
  EXPECT_EQ(plan.events[0].latency, Millis(50));
  EXPECT_EQ(plan.events[1].kind, DriftKind::kRamp);
  EXPECT_EQ(plan.events[1].duration, Millis(2000));
  EXPECT_EQ(plan.events[2].kind, DriftKind::kJoin);
  EXPECT_EQ(plan.events[2].dc, 3u);
  EXPECT_EQ(plan.events[3].kind, DriftKind::kLeave);
  EXPECT_EQ(plan.LastEventTime(), Millis(5000));
  ASSERT_EQ(plan.JoinedDcs().size(), 1u);
  EXPECT_EQ(plan.JoinedDcs()[0], 3u);

  // Round trip: the printed form parses back to the same plan.
  DriftPlan reparsed;
  ASSERT_TRUE(ParseDriftPlan(plan.ToString(), &reparsed, &error)) << error;
  EXPECT_EQ(reparsed.ToString(), plan.ToString());
}

TEST(DriftPlan, RejectsMalformedSpecs) {
  DriftPlan plan;
  std::string error;
  for (const char* bad : {"nonsense", "1000:step:3:240", "1000:ramp:3-5:240",
                          "1000:join", "x:step:1-2:10", "1000:warp:1-2:10"}) {
    error.clear();
    EXPECT_FALSE(ParseDriftPlan(bad, &plan, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

// --- Probe plane -----------------------------------------------------------

TEST(TopologyMonitor, ConvergesOnDriftedLatency) {
  Simulator sim;
  LatencyMatrix matrix(3);
  matrix.Set(0, 1, Millis(10));
  matrix.Set(0, 2, Millis(50));
  matrix.Set(1, 2, Millis(30));
  NetworkConfig net_config;
  net_config.bandwidth_bytes_per_us = 1e9;
  Network net(&sim, matrix, net_config);

  TopologyMonitor monitor(&net, {0, 1, 2}, matrix);
  monitor.Start();

  // Before any probe lands, estimates are the prior.
  EXPECT_EQ(monitor.EstimatedOneWay(0, 1), Millis(10));

  net.ScheduleLatencyStep(Seconds(1), 0, 1, Millis(40), /*symmetric=*/true);
  sim.RunUntil(Seconds(5));

  EXPECT_GT(monitor.samples(), 0u);
  // EWMA has had ~40 post-step samples: within a millisecond of truth.
  EXPECT_NEAR(static_cast<double>(monitor.EstimatedOneWay(0, 1)),
              static_cast<double>(Millis(40)), static_cast<double>(Millis(1)));
  EXPECT_NEAR(static_cast<double>(monitor.EstimatedOneWay(1, 0)),
              static_cast<double>(Millis(40)), static_cast<double>(Millis(1)));
  // Undrifted pairs keep their configured latency.
  EXPECT_NEAR(static_cast<double>(monitor.EstimatedOneWay(1, 2)),
              static_cast<double>(Millis(30)), static_cast<double>(Millis(1)));
  // MaxRttFrom(0) is the 0<->2 round trip (the slowest peer).
  EXPECT_NEAR(static_cast<double>(monitor.MaxRttFrom(0)),
              static_cast<double>(Millis(100)), static_cast<double>(Millis(2)));
  // BuildMatrix reflects the measured world.
  EXPECT_NEAR(static_cast<double>(monitor.BuildMatrix().Get(0, 1)),
              static_cast<double>(Millis(40)), static_cast<double>(Millis(1)));
}

// --- Adaptive failure detection --------------------------------------------

// The regression the adaptive detector exists to prevent: a steep 3x latency
// ramp on a datacenter's tree links stretches its whole-stream arrival gap
// past the static fallback timeout, tripping a spurious fallback even though
// nothing failed. With the detector scaling its silence threshold by the
// measured RTT, the same drift is absorbed.
TEST(AdaptiveDetector, ThreexLatencyRampDoesNotTripFailover) {
  auto run = [](bool adaptive) {
    ClusterConfig config = SmallClusterConfig(Protocol::kSaturn);
    config.dynamic.enabled = true;
    config.dynamic.adaptive_detector = adaptive;
    Cluster cluster(config, SmallReplicas(config), UniformClientHomes(3, 3),
                    SyntheticGenerators(DefaultWorkload()));
    for (DcId dc = 0; dc < 3; ++dc) {
      cluster.saturn_dc(dc)->set_fallback_timeout(Millis(150));
    }
    // Tokyo's links to Ireland (107ms) and Frankfurt (118ms) ramp to 3x in
    // one tick: every label bound for Tokyo arrives ~220ms later than the
    // previous one — longer than the 150ms static silence budget.
    DriftPlan drift;
    std::string error;
    EXPECT_TRUE(ParseDriftPlan("2000:ramp:3-5:321:50;2000:ramp:4-5:354:50", &drift,
                               &error))
        << error;
    cluster.InstallDriftPlan(drift);
    cluster.Run(Seconds(1), Seconds(3), /*drain=*/Seconds(2));

    EXPECT_TRUE(cluster.oracle()->Clean()) << cluster.oracle()->violations().front();
    uint32_t entries = 0;
    for (DcId dc = 0; dc < 3; ++dc) {
      entries += cluster.metrics().FallbackEntries(dc);
      EXPECT_FALSE(cluster.saturn_dc(dc)->in_timestamp_mode()) << "dc " << dc;
    }
    return entries;
  };

  // Control: the static timeout misreads the drift as a failure (and then
  // recovers through resync — the cost is a needless degraded-mode episode).
  EXPECT_GE(run(/*adaptive=*/false), 1u);
  // With RTT scaling the same world change trips nothing.
  EXPECT_EQ(run(/*adaptive=*/true), 0u);
}

// --- The control loop end to end -------------------------------------------

ClusterConfig DynamicFiveDcConfig() {
  ClusterConfig config;
  config.protocol = Protocol::kSaturn;
  config.dc_sites = Ec2Sites(5);
  config.latencies = Ec2Latencies();
  config.dc.num_gears = 2;
  config.enable_oracle = true;
  config.seed = 1234;
  config.dynamic.enabled = true;
  return config;
}

// Sustained drift must trigger exactly the pipeline the paper's static story
// lacks: measured mismatch degrades -> solver re-runs on the probe plane's
// matrix -> live epoch switch under traffic -> zero label loss -> visibility
// converges to what a fresh deployment on the drifted world achieves.
TEST(ReconfigControl, DriftTriggersLiveSwitchAndConvergesToFreshVisibility) {
  // Leg 1: dynamic cluster, world drifts at 1.5s, controller reacts. The
  // measurement window opens at 4.5s — after the switch has landed — so the
  // visibility histogram records the *post-convergence* state.
  ClusterConfig config = DynamicFiveDcConfig();
  Cluster cluster(config, SmallReplicas(config), UniformClientHomes(5, 4),
                  SyntheticGenerators(DefaultWorkload()));
  DriftPlan drift;
  std::string error;
  ASSERT_TRUE(ParseDriftPlan("1500:ramp:0-3:200:1000;1500:ramp:1-3:220:1000", &drift,
                             &error))
      << error;
  cluster.InstallDriftPlan(drift);
  // Stop load at the measurement boundary so the liveness check below sees a
  // fully drained system, not in-flight replication.
  cluster.StopClientsAt(Millis(7500));
  ExperimentResult dynamic_result =
      cluster.Run(Millis(4500), Seconds(3), /*drain=*/Seconds(2));

  const ReconfigController* ctl = cluster.reconfig_controller();
  ASSERT_NE(ctl, nullptr);
  EXPECT_GE(ctl->reconfigs(), 1u) << "drift never triggered a reconfiguration";
  EXPECT_FALSE(ctl->busy());

  // Zero label loss, no causality violation, service fully converged.
  EXPECT_TRUE(cluster.oracle()->Clean()) << cluster.oracle()->violations().front();
  EXPECT_TRUE(cluster.oracle()->MissingReplicas().empty());
  for (DcId dc = 0; dc < 5; ++dc) {
    EXPECT_FALSE(cluster.saturn_dc(dc)->in_timestamp_mode()) << "dc " << dc;
    EXPECT_EQ(cluster.saturn_dc(dc)->current_epoch(), ctl->epoch()) << "dc " << dc;
  }

  // The reconfiguration plane recorded its own latency and the visibility
  // tee during the switch window.
  const obs::MetricsSnapshot snap = cluster.metrics_registry().Snapshot();
  EXPECT_EQ(snap.Scalar("reconfig.completed"),
            static_cast<int64_t>(ctl->reconfigs()));
  const LatencyHistogram* reconfig_latency = snap.Histogram("reconfig_latency");
  ASSERT_NE(reconfig_latency, nullptr);
  EXPECT_EQ(reconfig_latency->count(), ctl->reconfigs());

  // Leg 2: a fresh cluster deployed directly on the drifted matrix — the
  // best any controller could converge to.
  ClusterConfig fresh_config = DynamicFiveDcConfig();
  fresh_config.dynamic.enabled = false;
  fresh_config.latencies.Set(0, 3, Millis(200));
  fresh_config.latencies.Set(1, 3, Millis(220));
  Cluster fresh(fresh_config, SmallReplicas(fresh_config), UniformClientHomes(5, 4),
                SyntheticGenerators(DefaultWorkload()));
  ExperimentResult fresh_result = fresh.Run(Seconds(1), Seconds(3), /*drain=*/Seconds(2));

  EXPECT_LT(dynamic_result.mean_visibility_ms,
            fresh_result.mean_visibility_ms * 1.10)
      << "post-convergence visibility (" << dynamic_result.mean_visibility_ms
      << "ms) not within 10% of a fresh deployment ("
      << fresh_result.mean_visibility_ms << "ms)";
}

// A datacenter joins mid-run: the stayers switch epochs, the joiner
// bootstraps through timestamp mode, its parked clients start, and by the end
// it has full causal visibility of every origin.
TEST(ReconfigControl, DatacenterJoinReachesFullCausalVisibility) {
  ClusterConfig config = DynamicFiveDcConfig();
  config.dc_sites = Ec2Sites(4);
  config.dynamic.deferred_dcs = {3};
  Cluster cluster(config, SmallReplicas(config), UniformClientHomes(4, 4),
                  SyntheticGenerators(DefaultWorkload()));
  DriftPlan drift;
  std::string error;
  ASSERT_TRUE(ParseDriftPlan("2000:join:3", &drift, &error)) << error;
  cluster.InstallDriftPlan(drift);
  cluster.StopClientsAt(Seconds(5));
  cluster.Run(Seconds(1), Seconds(4), /*drain=*/Seconds(2));

  const ReconfigController* ctl = cluster.reconfig_controller();
  ASSERT_NE(ctl, nullptr);
  EXPECT_EQ(ctl->joins(), 1u);
  EXPECT_FALSE(ctl->busy()) << "join never completed";
  EXPECT_TRUE(ctl->active().Contains(3));

  EXPECT_TRUE(cluster.oracle()->Clean()) << cluster.oracle()->violations().front();
  EXPECT_TRUE(cluster.oracle()->MissingReplicas().empty());
  for (DcId dc = 0; dc < 4; ++dc) {
    EXPECT_FALSE(cluster.saturn_dc(dc)->in_timestamp_mode()) << "dc " << dc;
    EXPECT_EQ(cluster.saturn_dc(dc)->current_epoch(), ctl->epoch()) << "dc " << dc;
  }
  EXPECT_TRUE(cluster.saturn_dc(3)->attached_to_tree());

  // Full causal visibility at the joiner: updates from every other origin
  // became visible there, and the joiner's own updates travelled out.
  for (DcId from = 0; from < 3; ++from) {
    EXPECT_GT(cluster.metrics().Visibility(from, 3).count(), 0u) << "from " << from;
    EXPECT_GT(cluster.metrics().Visibility(3, from).count(), 0u) << "to " << from;
  }
}

// A datacenter leaves gracefully: clients stopped, in-flight labels drained
// through the old tree, then a detach — the stayers keep streaming on the new
// epoch and nothing is lost anywhere (the leaver included: it still receives
// every remote update over the bulk channel, timestamp-stable).
TEST(ReconfigControl, DatacenterLeaveDrainsAndDetaches) {
  ClusterConfig config = DynamicFiveDcConfig();
  config.dc_sites = Ec2Sites(4);
  Cluster cluster(config, SmallReplicas(config), UniformClientHomes(4, 4),
                  SyntheticGenerators(DefaultWorkload()));
  DriftPlan drift;
  std::string error;
  ASSERT_TRUE(ParseDriftPlan("2000:leave:2", &drift, &error)) << error;
  cluster.InstallDriftPlan(drift);
  cluster.StopClientsAt(Seconds(5));
  cluster.Run(Seconds(1), Seconds(4), /*drain=*/Seconds(2));

  const ReconfigController* ctl = cluster.reconfig_controller();
  ASSERT_NE(ctl, nullptr);
  EXPECT_EQ(ctl->leaves(), 1u);
  EXPECT_FALSE(ctl->busy()) << "leave never completed";
  EXPECT_FALSE(ctl->active().Contains(2));

  EXPECT_TRUE(cluster.oracle()->Clean()) << cluster.oracle()->violations().front();
  EXPECT_TRUE(cluster.oracle()->MissingReplicas().empty());
  // The leaver is detached (timestamp-order delivery over bulk from now on);
  // the stayers stream on the post-leave epoch.
  EXPECT_FALSE(cluster.saturn_dc(2)->attached_to_tree());
  EXPECT_TRUE(cluster.saturn_dc(2)->in_timestamp_mode());
  for (DcId dc : ctl->active()) {
    EXPECT_FALSE(cluster.saturn_dc(dc)->in_timestamp_mode()) << "dc " << dc;
    EXPECT_EQ(cluster.saturn_dc(dc)->current_epoch(), ctl->epoch()) << "dc " << dc;
  }
}

// A uniform slowdown degrades the mismatch past the trigger but admits no
// better tree: the controller must re-anchor its baseline and keep the
// deployed tree, not churn through equivalent configurations.
TEST(ReconfigControl, UniformSlowdownReanchorsInsteadOfSwitching) {
  ClusterConfig config = SmallClusterConfig(Protocol::kSaturn);
  config.dynamic.enabled = true;
  Cluster cluster(config, SmallReplicas(config), UniformClientHomes(3, 3),
                  SyntheticGenerators(DefaultWorkload()));
  // Every pair doubles: sites 3/4/5 are Ireland/Frankfurt/Tokyo.
  DriftPlan drift;
  std::string error;
  ASSERT_TRUE(ParseDriftPlan("1500:step:3-4:20;1500:step:3-5:214;1500:step:4-5:236",
                             &drift, &error))
      << error;
  cluster.InstallDriftPlan(drift);
  cluster.Run(Seconds(1), Seconds(4), /*drain=*/Seconds(2));

  const ReconfigController* ctl = cluster.reconfig_controller();
  ASSERT_NE(ctl, nullptr);
  EXPECT_GE(ctl->rejected_solves(), 1u) << "trigger never fired on a doubled world";
  EXPECT_EQ(ctl->reconfigs(), 0u) << "controller churned the tree for nothing";
  EXPECT_TRUE(cluster.oracle()->Clean()) << cluster.oracle()->violations().front();
}

}  // namespace
}  // namespace saturn
