#include <gtest/gtest.h>

#include "src/runtime/regions.h"
#include "src/saturn/tree_solver.h"

namespace saturn {
namespace {

// Two site clusters: {0,1} close together, {2,3} close together, clusters far
// apart. The right two-serializer placement is one serializer per cluster.
LatencyMatrix ClusteredMatrix() {
  LatencyMatrix m(4);
  m.Set(0, 1, Millis(5));
  m.Set(2, 3, Millis(5));
  m.Set(0, 2, Millis(100));
  m.Set(0, 3, Millis(100));
  m.Set(1, 2, Millis(100));
  m.Set(1, 3, Millis(100));
  return m;
}

TreeTopology TwoSerializerShape() {
  TreeTopology tree;
  uint32_t s0 = tree.AddSerializer(0);
  uint32_t s1 = tree.AddSerializer(0);
  uint32_t d0 = tree.AddDcLeaf(0, 0);
  uint32_t d1 = tree.AddDcLeaf(1, 1);
  uint32_t d2 = tree.AddDcLeaf(2, 2);
  uint32_t d3 = tree.AddDcLeaf(3, 3);
  tree.AddEdge(s0, s1);
  tree.AddEdge(s0, d0);
  tree.AddEdge(s0, d1);
  tree.AddEdge(s1, d2);
  tree.AddEdge(s1, d3);
  return tree;
}

SolverInput ClusteredInput(const LatencyMatrix& m) {
  SolverInput input;
  input.dc_sites = {0, 1, 2, 3};
  input.candidate_sites = {0, 1, 2, 3};
  input.latencies = &m;
  return input;
}

TEST(TreeSolver, PlacesSerializersNearTheirClusters) {
  LatencyMatrix m = ClusteredMatrix();
  SolverInput input = ClusteredInput(m);
  SolvedTree solved = SolvePlacement(TwoSerializerShape(), input);

  // The serializer adjacent to {dc0, dc1} must sit in cluster {0,1} and the
  // other in cluster {2,3}; otherwise nearby pairs pay the 100ms hop.
  const auto& nodes = solved.topology.nodes();
  SiteId s0_site = nodes[0].site;
  SiteId s1_site = nodes[1].site;
  EXPECT_TRUE(s0_site == 0 || s0_site == 1) << "s0 at site " << s0_site;
  EXPECT_TRUE(s1_site == 2 || s1_site == 3) << "s1 at site " << s1_site;

  // Nearby pairs get near-optimal metadata latency.
  auto lat = [&m](SiteId a, SiteId b) { return m.Get(a, b); };
  EXPECT_LE(solved.topology.PathLatency(0, 1, lat), Millis(12));
  EXPECT_LE(solved.topology.PathLatency(2, 3, lat), Millis(12));
}

TEST(TreeSolver, DelaysLiftUndershootingPaths) {
  // A star with the hub at site 0: the dc0<->dc1 metadata path (5ms) is much
  // faster than some bulk-data latencies would want; with a weight profile
  // that emphasises a slow pair, the solver adds delay instead of hurting it.
  LatencyMatrix m = ClusteredMatrix();
  SolverInput input = ClusteredInput(m);
  TreeTopology star = StarTopology({0, 1, 2, 3}, 0);
  SolvedTree solved = SolvePlacement(star, input);

  // Paths that undershoot their bulk latency should have been lifted towards
  // it: total mismatch strictly better than the zero-delay star.
  TreeTopology zero_delay = solved.topology;
  for (auto& e : zero_delay.mutable_edges()) {
    e.delay_ab = 0;
    e.delay_ba = 0;
  }
  EXPECT_LE(solved.objective, WeightedMismatch(zero_delay, input) + 1e-6);
}

TEST(TreeSolver, WeightsSteerTheTradeoff) {
  LatencyMatrix m = ClusteredMatrix();
  SolverInput input = ClusteredInput(m);
  // Only the (0,1) pair matters.
  input.weights.assign(16, 0.0);
  input.weights[0 * 4 + 1] = 1.0;
  input.weights[1 * 4 + 0] = 1.0;
  SolvedTree solved = SolvePlacement(TwoSerializerShape(), input);
  auto lat = [&m](SiteId a, SiteId b) { return m.Get(a, b); };
  SimTime path = solved.topology.PathLatency(0, 1, lat);
  EXPECT_NEAR(static_cast<double>(path), static_cast<double>(Millis(5)), Millis(2));
}

TEST(TreeSolver, UniformWeightsZeroDiagonal) {
  auto w = UniformWeights(3);
  ASSERT_EQ(w.size(), 9u);
  EXPECT_EQ(w[0], 0.0);
  EXPECT_EQ(w[4], 0.0);
  EXPECT_EQ(w[1], 1.0);
}

TEST(TreeSolver, MismatchIsZeroForPerfectTree) {
  // Two DCs, one serializer placed at DC 0's site: metadata path = latency
  // only if intra-site hops are free (they are in this matrix-only view).
  LatencyMatrix m(2);
  m.Set(0, 1, Millis(30));
  SolverInput input;
  input.dc_sites = {0, 1};
  input.candidate_sites = {0, 1};
  input.latencies = &m;
  TreeTopology star = StarTopology({0, 1}, 0);
  EXPECT_DOUBLE_EQ(WeightedMismatch(star, input), 0.0);
}

}  // namespace
}  // namespace saturn
