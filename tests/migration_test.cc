#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace saturn {
namespace {

// Remote reads force clients through the migration machinery (section 4.4).
TEST(Migration, SaturnClientsMigrateAndStayCausal) {
  ClusterConfig config = SmallClusterConfig(Protocol::kSaturn);
  ReplicaMap replicas = SmallReplicas(config, CorrelationPattern::kUniform, 2);
  Cluster cluster(config, std::move(replicas), UniformClientHomes(3, 4),
                  SyntheticGenerators(DefaultWorkload(/*remote_reads=*/0.2)));
  cluster.Run(Seconds(1), Seconds(3));

  uint64_t migrations = 0;
  for (const auto& client : cluster.clients()) {
    migrations += client->migrations();
  }
  EXPECT_GT(migrations, 50u);
  ASSERT_NE(cluster.oracle(), nullptr);
  EXPECT_TRUE(cluster.oracle()->Clean()) << cluster.oracle()->violations().front();
  EXPECT_GT(cluster.metrics().AttachLatency().count(), 0u);
}

TEST(Migration, GentleRainAttachWaitsOnGst) {
  ClusterConfig config = SmallClusterConfig(Protocol::kGentleRain);
  ReplicaMap replicas = SmallReplicas(config, CorrelationPattern::kUniform, 2);
  Cluster cluster(config, std::move(replicas), UniformClientHomes(3, 4),
                  SyntheticGenerators(DefaultWorkload(/*remote_reads=*/0.2)));
  cluster.Run(Seconds(1), Seconds(3));
  ASSERT_NE(cluster.oracle(), nullptr);
  EXPECT_TRUE(cluster.oracle()->Clean()) << cluster.oracle()->violations().front();
}

TEST(Migration, CureAttachWaitsOnStableVector) {
  ClusterConfig config = SmallClusterConfig(Protocol::kCure);
  ReplicaMap replicas = SmallReplicas(config, CorrelationPattern::kUniform, 2);
  Cluster cluster(config, std::move(replicas), UniformClientHomes(3, 4),
                  SyntheticGenerators(DefaultWorkload(/*remote_reads=*/0.2)));
  cluster.Run(Seconds(1), Seconds(3));
  ASSERT_NE(cluster.oracle(), nullptr);
  EXPECT_TRUE(cluster.oracle()->Clean()) << cluster.oracle()->violations().front();
}

TEST(Migration, SaturnMigrationFasterThanGlobalStabilization) {
  // The migration-label fast path should make Saturn attaches cheaper than
  // GentleRain's GST wait (whose lag tracks the furthest datacenter).
  auto mean_attach = [](Protocol protocol) {
    ClusterConfig config = SmallClusterConfig(protocol);
    config.enable_oracle = false;
    ReplicaMap replicas = ReplicaMap::Generate(SmallKeyspace(CorrelationPattern::kUniform, 2),
                                               config.dc_sites, config.latencies);
    Cluster cluster(config, std::move(replicas), UniformClientHomes(3, 4),
                    SyntheticGenerators(DefaultWorkload(/*remote_reads=*/0.2)));
    cluster.Run(Seconds(1), Seconds(3));
    return cluster.metrics().AttachLatency().MeanMs();
  };
  double sat = mean_attach(Protocol::kSaturn);
  double gr = mean_attach(Protocol::kGentleRain);
  EXPECT_LT(sat, gr);
}

TEST(Migration, RemoteReadsDepressThroughputMoreForStabilizationProtocols) {
  // Fig. 5d: at high remote-read rates Saturn outperforms GentleRain and
  // Cure. (The paper's full ordering — GentleRain above Cure — needs the
  // 7-DC geometry, where vectors are wide and the GST lag is amortized over
  // short migrations; bench/fig5_throughput reproduces it. At 3 DCs we only
  // assert Saturn's advantage.)
  auto tput = [](Protocol protocol) {
    ClusterConfig config = SmallClusterConfig(protocol);
    config.enable_oracle = false;
    ReplicaMap replicas = ReplicaMap::Generate(SmallKeyspace(CorrelationPattern::kUniform, 2),
                                               config.dc_sites, config.latencies);
    Cluster cluster(config, std::move(replicas), UniformClientHomes(3, 8),
                    SyntheticGenerators(DefaultWorkload(/*remote_reads=*/0.4)));
    return cluster.Run(Seconds(1), Seconds(3)).throughput_ops;
  };
  double sat = tput(Protocol::kSaturn);
  double gr = tput(Protocol::kGentleRain);
  EXPECT_GT(sat, gr);
}

}  // namespace
}  // namespace saturn
