#include <gtest/gtest.h>

#include "src/core/gear.h"
#include "src/sim/clock.h"
#include "src/sim/event_queue.h"

namespace saturn {
namespace {

Label ClientLabel(int64_t ts) {
  Label l;
  l.ts = ts;
  return l;
}

TEST(Gear, TimestampsFollowTheClock) {
  Simulator sim;
  PhysicalClock clock(&sim, 0);
  Gear gear(MakeSourceId(0, 0), &clock);
  sim.At(1000, []() {});
  sim.RunAll();
  EXPECT_EQ(gear.GenerateTimestamp(kBottomLabel), 1000);
}

TEST(Gear, MonotonicUnderSameMicrosecond) {
  Simulator sim;
  PhysicalClock clock(&sim, 0);
  Gear gear(MakeSourceId(0, 0), &clock);
  int64_t prev = -1;
  for (int i = 0; i < 100; ++i) {
    int64_t ts = gear.GenerateTimestamp(kBottomLabel);
    EXPECT_GT(ts, prev);
    prev = ts;
  }
}

TEST(Gear, ExceedsClientLabel) {
  // Section 4.2: the generated timestamp must be strictly greater than every
  // label the client has observed, even one from a fast remote clock.
  Simulator sim;
  PhysicalClock clock(&sim, 0);
  Gear gear(MakeSourceId(0, 0), &clock);
  int64_t ts = gear.GenerateTimestamp(ClientLabel(999999));
  EXPECT_GT(ts, 999999);
}

TEST(Gear, HeartbeatNeverExceedsFutureLabels) {
  Simulator sim;
  PhysicalClock clock(&sim, 0);
  Gear gear(MakeSourceId(0, 0), &clock);
  sim.At(500, []() {});
  sim.RunAll();
  int64_t hb = gear.HeartbeatTimestamp();
  // Any label generated at or after the heartbeat carries a greater-or-equal
  // timestamp; this is the promise remote stability relies on.
  int64_t next = gear.GenerateTimestamp(kBottomLabel);
  EXPECT_GE(next, hb);
}

TEST(Gear, HeartbeatMonotone) {
  Simulator sim;
  PhysicalClock clock(&sim, 0);
  Gear gear(MakeSourceId(0, 0), &clock);
  gear.GenerateTimestamp(ClientLabel(10000));  // pushes last_ts far ahead
  int64_t hb = gear.HeartbeatTimestamp();
  EXPECT_GE(hb, 10000);
}

TEST(Gear, SkewedClockStillRespectsClientLabel) {
  Simulator sim;
  PhysicalClock clock(&sim, -2000);  // clock behind true time
  Gear gear(MakeSourceId(0, 0), &clock);
  sim.At(1000, []() {});
  sim.RunAll();
  EXPECT_GT(gear.GenerateTimestamp(ClientLabel(5000)), 5000);
}

}  // namespace
}  // namespace saturn
