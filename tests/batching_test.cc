// Metadata-link batching plane (reliable_link.h + label_codec.h).
//
// The batch layer must be a pure transport optimization: the receiver-side
// delivery stream — order, content, exactly-once — is identical whether a
// window is configured or not, and a deadline of 0 keeps the wire
// byte-for-byte identical to the pre-batching plane. What batching *is*
// allowed to change is the wire: fewer frames, fewer bytes, acks piggybacked
// on reverse traffic, and contiguous retransmission runs re-coalesced into
// single frames.
#include <gtest/gtest.h>

#include <vector>

#include "src/saturn/reliable_link.h"

namespace saturn {
namespace {

// A node whose only job is to own one end of a reliable link set: received
// frames are fed back through the links (dedup / reorder / ack), deliveries
// are recorded.
class LinkEndpoint : public Actor {
 public:
  LinkEndpoint(Simulator* sim, Network* net)
      : links_(sim, net, this, [this](NodeId, const LabelEnvelope& env) {
          delivered.push_back(env);
        }) {}

  void HandleMessage(NodeId from, const Message& msg) override {
    if (const auto* env = std::get_if<LabelEnvelope>(&msg)) {
      links_.OnEnvelope(from, *env);
    } else if (const auto* batch = std::get_if<LabelBatch>(&msg)) {
      links_.OnBatch(from, *batch);
    } else if (const auto* ack = std::get_if<LinkAck>(&msg)) {
      links_.OnAck(from, *ack);
    }
  }

  ReliableLinks& links() { return links_; }
  std::vector<LabelEnvelope> delivered;

 private:
  ReliableLinks links_;
};

LabelEnvelope Env(int64_t ts, uint64_t uid) {
  LabelEnvelope env;
  env.label.ts = ts;
  env.label.uid = uid;
  env.interest = DcSet::Single(1);
  return env;
}

LatencyMatrix MakeMatrix() {
  LatencyMatrix m(2);
  m.Set(0, 1, Millis(10));
  return m;
}

// One complete scenario: `count` envelopes sent in `bursts` spaced bursts,
// run to quiescence. Returns the delivered stream plus wire statistics.
struct ScenarioResult {
  std::vector<LabelEnvelope> delivered;
  uint64_t messages_sent = 0;
  uint64_t label_wire_bytes = 0;
  uint64_t ack_wire_bytes = 0;
  uint64_t retransmit_coalesced = 0;
};

ScenarioResult RunScenario(const LinkBatchConfig& batch, int count, int bursts) {
  Simulator sim;
  Network net(&sim, MakeMatrix());
  LinkEndpoint sender(&sim, &net);
  LinkEndpoint receiver(&sim, &net);
  net.Attach(&sender, 0);
  net.Attach(&receiver, 1);
  sender.links().ConfigureBatching(batch);

  int per_burst = count / bursts;
  for (int b = 0; b < bursts; ++b) {
    sim.At(Millis(b * 10), [&, b]() {
      for (int i = 0; i < per_burst; ++i) {
        int n = b * per_burst + i;
        sender.links().Send(receiver.node_id(), Env(n, 1000 + n));
      }
    });
  }
  sim.RunAll();

  ScenarioResult result;
  result.delivered = receiver.delivered;
  result.messages_sent = net.messages_sent();
  result.label_wire_bytes = net.wire_bytes(LinkClass::kMetadataLabels);
  result.ack_wire_bytes = net.wire_bytes(LinkClass::kMetadataAcks);
  result.retransmit_coalesced = sender.links().retransmit_coalesced();
  return result;
}

void ExpectInOrder(const std::vector<LabelEnvelope>& delivered, int count) {
  ASSERT_EQ(delivered.size(), static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    EXPECT_EQ(delivered[i].label.ts, i);
    EXPECT_EQ(delivered[i].label.uid, 1000u + static_cast<uint64_t>(i));
  }
}

TEST(Batching, DeliveryStreamIdenticalBatchedOrNot) {
  ScenarioResult plain = RunScenario({32, 1024, 0}, 60, 3);
  ScenarioResult batched = RunScenario({32, 1024, Millis(1)}, 60, 3);
  ExpectInOrder(plain.delivered, 60);
  ExpectInOrder(batched.delivered, 60);
}

TEST(Batching, CoalescingShrinksTheWire) {
  ScenarioResult plain = RunScenario({32, 1024, 0}, 60, 3);
  ScenarioResult batched = RunScenario({32, 1024, Millis(1)}, 60, 3);
  // 60 envelopes in 3 bursts: unbatched pays 60 label frames; batched pays one
  // frame per flush (20 labels fit one 32-label batch comfortably).
  EXPECT_LT(batched.messages_sent, plain.messages_sent / 4);
  EXPECT_LT(batched.label_wire_bytes, plain.label_wire_bytes / 3);
}

TEST(Batching, DeadlineZeroKeepsTheOldWireExactly) {
  ScenarioResult plain = RunScenario({32, 1024, 0}, 10, 1);
  // Per-label frames at the pinned LabelEnvelope wire size; no batch frames.
  EXPECT_EQ(plain.label_wire_bytes, 10u * 48u);
  ExpectInOrder(plain.delivered, 10);
}

TEST(Batching, SizeBoundFlushesBeforeDeadline) {
  // 40 labels in one burst against a 4-label bound and a deadline far beyond
  // the run: only the size trigger can have flushed them.
  ScenarioResult result = RunScenario({4, 1024, Seconds(10)}, 40, 1);
  ExpectInOrder(result.delivered, 40);
}

TEST(Batching, DeadlineFlushesPartialBatch) {
  // 3 labels never reach the 32-label bound; the deadline must flush them.
  Simulator sim;
  Network net(&sim, MakeMatrix());
  LinkEndpoint sender(&sim, &net);
  LinkEndpoint receiver(&sim, &net);
  net.Attach(&sender, 0);
  net.Attach(&receiver, 1);
  sender.links().ConfigureBatching({32, 1024, Millis(2)});
  for (int i = 0; i < 3; ++i) {
    sender.links().Send(receiver.node_id(), Env(i, 1000 + i));
  }
  sim.RunUntil(Millis(1));
  EXPECT_TRUE(receiver.delivered.empty());  // still pending in the open batch
  sim.RunAll();
  ExpectInOrder(receiver.delivered, 3);
}

TEST(Batching, ReverseTrafficPiggybacksAcks) {
  // Sustained bidirectional batched traffic: every data frame can carry the
  // cumulative ack for the reverse direction, so standalone LinkAcks appear
  // only in the quiescent tail after the last frames cross.
  Simulator sim;
  Network net(&sim, MakeMatrix());
  LinkEndpoint a(&sim, &net);
  LinkEndpoint b(&sim, &net);
  net.Attach(&a, 0);
  net.Attach(&b, 1);
  a.links().ConfigureBatching({32, 1024, Millis(1)});
  b.links().ConfigureBatching({32, 1024, Millis(1)});

  for (int burst = 0; burst < 20; ++burst) {
    sim.At(Millis(burst * 2), [&, burst]() {
      for (int i = 0; i < 5; ++i) {
        int n = burst * 5 + i;
        a.links().Send(b.node_id(), Env(n, 1000 + n));
        b.links().Send(a.node_id(), Env(n, 5000 + n));
      }
    });
  }
  sim.RunAll();

  ASSERT_EQ(a.delivered.size(), 100u);
  ASSERT_EQ(b.delivered.size(), 100u);
  // ~40 data frames crossed; piggybacking must leave at most the tail's worth
  // of standalone acks (LinkAck wire size is pinned at 16).
  uint64_t standalone_acks = net.wire_bytes(LinkClass::kMetadataAcks) / 16;
  EXPECT_LE(standalone_acks, 4u);
}

TEST(Batching, LossyCutRetransmitsAsCoalescedFrames) {
  Simulator sim;
  Network net(&sim, MakeMatrix());
  LinkEndpoint sender(&sim, &net);
  LinkEndpoint receiver(&sim, &net);
  net.Attach(&sender, 0);
  net.Attach(&receiver, 1);
  sender.links().ConfigureBatching({32, 1024, Millis(1)});

  net.CutLink(0, 1, /*drop_messages=*/true);
  for (int i = 0; i < 10; ++i) {
    sender.links().Send(receiver.node_id(), Env(i, 1000 + i));
  }
  sim.At(Millis(200), [&]() { net.HealLink(0, 1); });
  sim.RunAll();

  // Every label arrives exactly once, in order, and the retransmission that
  // got them through coalesced the contiguous run into one frame.
  ExpectInOrder(receiver.delivered, 10);
  EXPECT_GE(sender.links().retransmissions(), 10u);
  EXPECT_GE(sender.links().retransmit_coalesced(), 1u);
}

TEST(Batching, RetransmitCoalescedStaysZeroWithoutBatching) {
  Simulator sim;
  Network net(&sim, MakeMatrix());
  LinkEndpoint sender(&sim, &net);
  LinkEndpoint receiver(&sim, &net);
  net.Attach(&sender, 0);
  net.Attach(&receiver, 1);

  net.CutLink(0, 1, /*drop_messages=*/true);
  for (int i = 0; i < 10; ++i) {
    sender.links().Send(receiver.node_id(), Env(i, 1000 + i));
  }
  sim.At(Millis(200), [&]() { net.HealLink(0, 1); });
  sim.RunAll();

  ExpectInOrder(receiver.delivered, 10);
  EXPECT_GE(sender.links().retransmissions(), 10u);
  EXPECT_EQ(sender.links().retransmit_coalesced(), 0u);
}

TEST(Batching, OversizeBatchSpillsButStaysCorrect) {
  // A byte bound far above the inline BatchBytes capacity forces the encoded
  // frame to spill to the heap; content must survive the spill.
  ScenarioResult result = RunScenario({1000, 100000, Seconds(10)}, 300, 1);
  ExpectInOrder(result.delivered, 300);
}

}  // namespace
}  // namespace saturn
