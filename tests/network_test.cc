#include <gtest/gtest.h>

#include <vector>

#include "src/sim/network.h"

namespace saturn {
namespace {

// Collects received heartbeat messages with their delivery times.
class Sink : public Actor {
 public:
  explicit Sink(Simulator* sim) : sim_(sim) {}

  void HandleMessage(NodeId from, const Message& msg) override {
    (void)from;
    if (const auto* hb = std::get_if<BulkHeartbeat>(&msg)) {
      received.push_back({sim_->Now(), hb->ts});
    }
  }

  std::vector<std::pair<SimTime, int64_t>> received;

 private:
  Simulator* sim_;
};

BulkHeartbeat Hb(int64_t ts) {
  BulkHeartbeat hb;
  hb.ts = ts;
  return hb;
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : matrix_(3) {
    matrix_.Set(0, 1, Millis(10));
    matrix_.Set(0, 2, Millis(50));
    matrix_.Set(1, 2, Millis(30));
  }

  LatencyMatrix matrix_;
};

TEST_F(NetworkTest, DeliversWithConfiguredLatency) {
  Simulator sim;
  NetworkConfig config;
  config.bandwidth_bytes_per_us = 1e9;  // transmission time negligible
  Network net(&sim, matrix_, config);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 0);
  net.Attach(&b, 1);

  net.Send(a.node_id(), b.node_id(), Hb(1));
  sim.RunAll();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, Millis(10));
}

TEST_F(NetworkTest, IntraSiteLatencyApplies) {
  Simulator sim;
  NetworkConfig config;
  config.intra_site_latency = Micros(250);
  config.bandwidth_bytes_per_us = 1e9;
  Network net(&sim, matrix_, config);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 2);
  net.Attach(&b, 2);

  net.Send(a.node_id(), b.node_id(), Hb(1));
  sim.RunAll();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, Micros(250));
}

TEST_F(NetworkTest, FifoPerChannelEvenWithJitter) {
  Simulator sim;
  NetworkConfig config;
  config.jitter_fraction = 0.5;
  Network net(&sim, matrix_, config);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 0);
  net.Attach(&b, 2);

  for (int i = 0; i < 100; ++i) {
    net.Send(a.node_id(), b.node_id(), Hb(i));
  }
  sim.RunAll();
  ASSERT_EQ(b.received.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(b.received[i].second, i);  // order preserved
  }
}

TEST_F(NetworkTest, InjectedLatencyAddsAndClears) {
  Simulator sim;
  NetworkConfig config;
  config.bandwidth_bytes_per_us = 1e9;
  Network net(&sim, matrix_, config);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 0);
  net.Attach(&b, 1);

  net.InjectExtraLatency(0, 1, Millis(25));
  EXPECT_EQ(net.BaseLatency(0, 1), Millis(35));
  net.Send(a.node_id(), b.node_id(), Hb(1));
  sim.RunAll();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, Millis(35));

  net.InjectExtraLatency(0, 1, 0);
  EXPECT_EQ(net.BaseLatency(0, 1), Millis(10));
}

TEST_F(NetworkTest, AsymmetricInjectedLatencyTouchesOneDirection) {
  Simulator sim;
  NetworkConfig config;
  config.bandwidth_bytes_per_us = 1e9;
  Network net(&sim, matrix_, config);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 0);
  net.Attach(&b, 1);

  net.InjectExtraLatencyOneWay(0, 1, Millis(25));
  EXPECT_EQ(net.BaseLatency(0, 1), Millis(35));
  EXPECT_EQ(net.BaseLatency(1, 0), Millis(10));  // reverse path untouched

  net.Send(a.node_id(), b.node_id(), Hb(1));
  net.Send(b.node_id(), a.node_id(), Hb(2));
  sim.RunAll();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, Millis(35));
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(a.received[0].first, Millis(10));

  net.InjectExtraLatencyOneWay(0, 1, 0);
  EXPECT_EQ(net.BaseLatency(0, 1), Millis(10));
  // The symmetric injector still writes both directions at once (Fig. 6).
  net.InjectExtraLatency(0, 1, Millis(5));
  EXPECT_EQ(net.BaseLatency(0, 1), Millis(15));
  EXPECT_EQ(net.BaseLatency(1, 0), Millis(15));
}

TEST_F(NetworkTest, ScheduledStepRewritesBaseLatency) {
  Simulator sim;
  NetworkConfig config;
  config.bandwidth_bytes_per_us = 1e9;
  Network net(&sim, matrix_, config);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 0);
  net.Attach(&b, 1);

  net.ScheduleLatencyStep(Millis(100), 0, 1, Millis(40), /*symmetric=*/false);
  sim.At(Millis(99), [&] { net.Send(a.node_id(), b.node_id(), Hb(1)); });
  sim.At(Millis(101), [&] { net.Send(a.node_id(), b.node_id(), Hb(2)); });
  sim.At(Millis(101), [&] { net.Send(b.node_id(), a.node_id(), Hb(3)); });
  sim.RunAll();

  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].first, Millis(99) + Millis(10));   // pre-step latency
  EXPECT_EQ(b.received[1].first, Millis(101) + Millis(40));  // post-step latency
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(a.received[0].first, Millis(101) + Millis(10));  // directed: reverse keeps base
  EXPECT_EQ(net.CurrentBaseLatency(0, 1), Millis(40));
  EXPECT_EQ(net.CurrentBaseLatency(1, 0), Millis(10));
}

TEST_F(NetworkTest, ScheduledRampInterpolatesAndComposesWithInjection) {
  Simulator sim;
  NetworkConfig config;
  config.bandwidth_bytes_per_us = 1e9;
  Network net(&sim, matrix_, config);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 0);
  net.Attach(&b, 1);

  // 10ms -> 50ms over 200ms, both directions, starting at t=100ms.
  net.ScheduleLatencyRamp(Millis(100), 0, 1, Millis(50), Millis(200), /*symmetric=*/true);
  net.InjectExtraLatency(0, 1, Millis(5));  // chaos overlay rides on top
  sim.At(Millis(200), [&] { net.Send(a.node_id(), b.node_id(), Hb(1)); });  // mid-ramp
  sim.At(Millis(400), [&] { net.Send(a.node_id(), b.node_id(), Hb(2)); });  // post-ramp
  sim.At(Millis(400), [&] { net.Send(b.node_id(), a.node_id(), Hb(3)); });
  sim.RunAll();

  // Mid-ramp (t=200ms, halfway): base is ~30ms, discretized in kRampTick
  // slices, plus the 5ms overlay.
  ASSERT_EQ(b.received.size(), 2u);
  SimTime mid = b.received[0].first - Millis(200) - Millis(5);
  EXPECT_GE(mid, Millis(20));
  EXPECT_LE(mid, Millis(40));
  EXPECT_EQ(b.received[1].first, Millis(400) + Millis(50) + Millis(5));
  // Symmetric ramp: the reverse direction landed on the target too (and the
  // symmetric overlay covers both directions).
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_EQ(a.received[0].first, Millis(400) + Millis(50) + Millis(5));
  EXPECT_EQ(net.CurrentBaseLatency(0, 1), Millis(50));
  EXPECT_EQ(net.CurrentBaseLatency(1, 0), Millis(50));
}

TEST_F(NetworkTest, LargeMessagesPayTransmissionTime) {
  Simulator sim;
  NetworkConfig config;
  config.bandwidth_bytes_per_us = 1.0;  // 1 byte per microsecond
  Network net(&sim, matrix_, config);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 0);
  net.Attach(&b, 1);

  RemotePayload payload;
  payload.value_size = 1000;
  net.Send(a.node_id(), b.node_id(), payload);
  sim.RunAll();
  // 10ms latency + (104 + 1000) bytes at 1 B/us.
  EXPECT_EQ(sim.Now(), Millis(10) + 1104);
}

TEST_F(NetworkTest, DownLinkBuffersAndFlushesInOrder) {
  Simulator sim;
  Network net(&sim, matrix_);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 0);
  net.Attach(&b, 1);

  net.SetLinkDown(0, 1, true);
  net.Send(a.node_id(), b.node_id(), Hb(1));
  net.Send(a.node_id(), b.node_id(), Hb(2));
  sim.RunUntil(Millis(100));
  EXPECT_TRUE(b.received.empty());

  net.SetLinkDown(0, 1, false);
  sim.RunAll();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].second, 1);
  EXPECT_EQ(b.received[1].second, 2);
  EXPECT_GE(b.received[0].first, Millis(100));
}

TEST_F(NetworkTest, LossyCutDropsInsteadOfBuffering) {
  Simulator sim;
  Network net(&sim, matrix_);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 0);
  net.Attach(&b, 1);

  net.CutLink(0, 1, /*drop_messages=*/true);
  EXPECT_TRUE(net.LinkDown(0, 1));
  net.Send(a.node_id(), b.node_id(), Hb(1));
  net.Send(a.node_id(), b.node_id(), Hb(2));
  net.HealLink(0, 1);
  net.Send(a.node_id(), b.node_id(), Hb(3));
  sim.RunAll();

  // Nothing buffered: only the post-heal message arrives.
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].second, 3);
  EXPECT_EQ(net.dropped_on_cut(), 2u);
  EXPECT_EQ(net.messages_dropped(), 2u);
}

TEST_F(NetworkTest, LossyCutEatsMessagesAlreadyInFlight) {
  Simulator sim;
  Network net(&sim, matrix_);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 0);
  net.Attach(&b, 1);

  // Sent on a healthy link (10ms one way), but the cut lands at 5ms — before
  // delivery — so the in-flight message is lost too.
  net.Send(a.node_id(), b.node_id(), Hb(1));
  sim.At(Millis(5), [&net]() { net.CutLink(0, 1, /*drop_messages=*/true); });
  sim.RunAll();

  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.dropped_on_cut(), 1u);
}

TEST_F(NetworkTest, BufferedCutLeavesInFlightAlone) {
  Simulator sim;
  Network net(&sim, matrix_);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 0);
  net.Attach(&b, 1);

  net.Send(a.node_id(), b.node_id(), Hb(1));
  sim.At(Millis(5), [&net]() { net.CutLink(0, 1, /*drop_messages=*/false); });
  sim.RunUntil(Millis(100));
  // TCP semantics: the cut only stops *new* traffic; the in-flight segment
  // still lands.
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(net.messages_dropped(), 0u);
}

TEST_F(NetworkTest, DownBufferCapDropsOldestFirst) {
  Simulator sim;
  NetworkConfig config;
  config.down_buffer_cap = 2;
  Network net(&sim, matrix_, config);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 0);
  net.Attach(&b, 1);

  net.CutLink(0, 1, /*drop_messages=*/false);
  for (int64_t ts = 1; ts <= 4; ++ts) {
    net.Send(a.node_id(), b.node_id(), Hb(ts));
  }
  EXPECT_EQ(net.dropped_overflow(), 2u);
  net.HealLink(0, 1);
  sim.RunAll();

  // The two newest survived, in order.
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].second, 3);
  EXPECT_EQ(b.received[1].second, 4);
}

TEST_F(NetworkTest, CrashedNodeDropsTrafficBothWays) {
  Simulator sim;
  Network net(&sim, matrix_);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 0);
  net.Attach(&b, 1);

  net.SetNodeDown(b.node_id(), true);
  EXPECT_TRUE(net.NodeDown(b.node_id()));
  net.Send(a.node_id(), b.node_id(), Hb(1));  // into the crash: dropped
  net.Send(b.node_id(), a.node_id(), Hb(2));  // out of the crash: dropped
  sim.RunAll();
  EXPECT_TRUE(b.received.empty());
  EXPECT_TRUE(a.received.empty());
  EXPECT_EQ(net.dropped_node_down(), 2u);

  // Recovery replays nothing, but new traffic flows again.
  net.SetNodeDown(b.node_id(), false);
  net.Send(a.node_id(), b.node_id(), Hb(3));
  sim.RunAll();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].second, 3);
}

TEST_F(NetworkTest, CrashEatsMessagesInFlightToTheNode) {
  Simulator sim;
  Network net(&sim, matrix_);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 0);
  net.Attach(&b, 1);

  net.Send(a.node_id(), b.node_id(), Hb(1));
  sim.At(Millis(5), [&net, &b]() { net.SetNodeDown(b.node_id(), true); });
  sim.RunAll();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.dropped_node_down(), 1u);
}

TEST_F(NetworkTest, EscalatingBufferedCutToLossyDropsTheBuffer) {
  Simulator sim;
  Network net(&sim, matrix_);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 0);
  net.Attach(&b, 1);

  net.CutLink(0, 1, /*drop_messages=*/false);
  net.Send(a.node_id(), b.node_id(), Hb(1));
  net.CutLink(0, 1, /*drop_messages=*/true);  // escalate: partition now lossy
  net.HealLink(0, 1);
  sim.RunAll();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.dropped_on_cut(), 1u);
}

TEST_F(NetworkTest, CountsTraffic) {
  Simulator sim;
  Network net(&sim, matrix_);
  Sink a(&sim);
  Sink b(&sim);
  net.Attach(&a, 0);
  net.Attach(&b, 1);
  net.Send(a.node_id(), b.node_id(), Hb(1));
  net.Send(b.node_id(), a.node_id(), Hb(2));
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_GT(net.bytes_sent(), 0u);
}

TEST(LatencyMatrixTest, SymmetricWithZeroDiagonal) {
  LatencyMatrix m(4, Millis(20));
  EXPECT_EQ(m.Get(1, 1), 0);
  m.Set(1, 2, Millis(5));
  EXPECT_EQ(m.Get(1, 2), Millis(5));
  EXPECT_EQ(m.Get(2, 1), Millis(5));
  EXPECT_EQ(m.Get(0, 3), Millis(20));  // default preserved elsewhere
}

}  // namespace
}  // namespace saturn
