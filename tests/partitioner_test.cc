#include <gtest/gtest.h>

#include "src/runtime/regions.h"
#include "src/workload/partitioner.h"

namespace saturn {
namespace {

SocialGraph TestGraph() {
  SocialGraphConfig config;
  config.num_users = 2000;
  config.edges_per_node = 10;
  return SocialGraph::Generate(config);
}

TEST(Partitioner, ReplicaBoundsHonored) {
  SocialGraph graph = TestGraph();
  for (uint32_t max_r = 2; max_r <= 5; ++max_r) {
    PartitionerConfig config;
    config.num_dcs = 7;
    config.min_replicas = 2;
    config.max_replicas = max_r;
    Partitioning part = PartitionSocialGraph(graph, config, Ec2Sites(), Ec2Latencies());
    for (uint32_t user = 0; user < graph.num_users(); ++user) {
      int size = part.replicas.ReplicasOf(user).Size();
      EXPECT_GE(size, 2);
      EXPECT_LE(size, static_cast<int>(max_r));
    }
  }
}

TEST(Partitioner, PrimaryIsAlwaysReplicated) {
  SocialGraph graph = TestGraph();
  PartitionerConfig config;
  Partitioning part = PartitionSocialGraph(graph, config, Ec2Sites(), Ec2Latencies());
  for (uint32_t user = 0; user < graph.num_users(); ++user) {
    EXPECT_TRUE(part.replicas.ReplicasOf(user).Contains(part.primary[user]));
  }
}

TEST(Partitioner, LoadIsRoughlyBalanced) {
  SocialGraph graph = TestGraph();
  PartitionerConfig config;
  Partitioning part = PartitionSocialGraph(graph, config, Ec2Sites(), Ec2Latencies());
  std::vector<int> load(7, 0);
  for (uint32_t user = 0; user < graph.num_users(); ++user) {
    ++load[part.primary[user]];
  }
  double mean = static_cast<double>(graph.num_users()) / 7.0;
  for (int l : load) {
    EXPECT_GT(l, mean * 0.5);
    EXPECT_LT(l, mean * 1.8);
  }
}

TEST(Partitioner, BeatsRandomPlacementOnLocality) {
  SocialGraph graph = TestGraph();
  PartitionerConfig config;
  config.max_replicas = 3;
  Partitioning part = PartitionSocialGraph(graph, config, Ec2Sites(), Ec2Latencies());

  // Random baseline: each user at a random DC with 3 random replicas would
  // give locality ~ 3/7 ~ 0.43. The greedy partitioner must clearly beat it.
  EXPECT_GT(part.friend_locality, 0.55);
}

TEST(Partitioner, HigherMaxReplicasRaisesLocality) {
  SocialGraph graph = TestGraph();
  PartitionerConfig lo;
  lo.max_replicas = 2;
  PartitionerConfig hi;
  hi.max_replicas = 5;
  double locality_lo =
      PartitionSocialGraph(graph, lo, Ec2Sites(), Ec2Latencies()).friend_locality;
  double locality_hi =
      PartitionSocialGraph(graph, hi, Ec2Sites(), Ec2Latencies()).friend_locality;
  EXPECT_GT(locality_hi, locality_lo);
}

TEST(Partitioner, MinReplicasPadsWithNearbyDcs) {
  // A graph of isolated pairs: friend counts give only 1-2 candidate DCs, so
  // min_replicas forces padding.
  SocialGraphConfig small;
  small.num_users = 50;
  small.edges_per_node = 1;
  SocialGraph graph = SocialGraph::Generate(small);
  PartitionerConfig config;
  config.min_replicas = 4;
  config.max_replicas = 5;
  Partitioning part = PartitionSocialGraph(graph, config, Ec2Sites(), Ec2Latencies());
  for (uint32_t user = 0; user < graph.num_users(); ++user) {
    EXPECT_GE(part.replicas.ReplicasOf(user).Size(), 4);
  }
}

}  // namespace
}  // namespace saturn
