// The observability plane's core contract: the trace recorder observes
// without perturbing. Tracing on vs off must leave the executed-event
// fingerprint identical, exports must be byte-identical across sweep job
// counts, and every sampled journey must be a complete, time-ordered path
// from its frontend commit to remote visibility.
#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/runtime/sweep.h"
#include "src/saturn/topology.h"
#include "tests/test_util.h"

namespace saturn {
namespace {

// --- Recorder unit tests ---------------------------------------------------

TEST(TraceRecorder, RingDropsOldestAndCountsDrops) {
  obs::TraceConfig config;
  config.ring_capacity = 4;
  obs::TraceRecorder rec(config);
  uint32_t track = rec.RegisterTrack("t");
  for (int i = 0; i < 10; ++i) {
    rec.Instant(i, track, "tick");
  }
  EXPECT_EQ(rec.events_recorded(), 10u);
  EXPECT_EQ(rec.events_retained(), 4u);
  EXPECT_EQ(rec.events_dropped(), 6u);
  // The export holds only the newest four instants (ts 6..9).
  std::string json = rec.ExportJson();
  EXPECT_EQ(json.find("\"ts\":5,"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":6,"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":9,"), std::string::npos);
}

TEST(TraceRecorder, SpansSurviveRingWrapAsMatchedPairs) {
  obs::TraceConfig config;
  config.ring_capacity = 2;
  obs::TraceRecorder rec(config);
  uint32_t track = rec.RegisterTrack("dc0");
  rec.SpanBegin(10, track, "timestamp-mode");
  for (int i = 0; i < 50; ++i) {
    rec.Instant(20 + i, track, "tick");  // wraps the tiny ring many times
  }
  rec.SpanEnd(80, track, "timestamp-mode");
  std::string json = rec.ExportJson();
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10,"), std::string::npos);  // begin kept its time
}

TEST(TraceRecorder, OpenSpanGetsSyntheticCloseAtLastTimestamp) {
  obs::TraceRecorder rec(obs::TraceConfig{});
  uint32_t track = rec.RegisterTrack("dc0");
  rec.SpanBegin(10, track, "timestamp-mode");
  rec.Instant(99, track, "tick");
  std::string json = rec.ExportJson();
  EXPECT_NE(json.find("\"ph\":\"e\",\"pid\":1,\"tid\":0,\"ts\":99"),
            std::string::npos);
}

TEST(TraceRecorder, ReentrantSpanBeginsCollapseToOnePair) {
  obs::TraceRecorder rec(obs::TraceConfig{});
  uint32_t track = rec.RegisterTrack("dc0");
  rec.SpanBegin(10, track, "mode");
  rec.SpanBegin(20, track, "mode");  // nested: counted, not emitted
  rec.SpanEnd(30, track, "mode");
  rec.SpanEnd(40, track, "mode");
  std::string json = rec.ExportJson();
  size_t first = json.find("\"ph\":\"b\"");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"b\"", first + 1), std::string::npos);
}

TEST(TraceRecorder, JourneySamplingIsDeterministicByUid) {
  obs::TraceConfig config;
  config.journey_sample_every = 8;
  obs::TraceRecorder rec(config);
  EXPECT_TRUE(rec.WantJourney(8));
  EXPECT_TRUE(rec.WantJourney(64));
  EXPECT_FALSE(rec.WantJourney(9));
  EXPECT_FALSE(rec.WantJourney(0));  // uid 0 means "no label"
}

TEST(TraceRecorder, JourneysStartOnlyAtCommit) {
  obs::TraceRecorder rec(obs::TraceConfig{});
  uint32_t track = rec.RegisterTrack("dc0");
  // A hop for an unknown uid that is not a commit is ignored...
  rec.JourneyHop(5, 8, obs::HopKind::kSerializer, track, /*dc=*/-1);
  EXPECT_TRUE(rec.journeys().empty());
  // ...but a commit creates the journey and later hops attach to it.
  rec.JourneyHop(10, 8, obs::HopKind::kCommit, track, /*dc=*/0, /*label_ts=*/42,
                 /*src=*/1);
  rec.JourneyHop(20, 8, obs::HopKind::kVisible, track, /*dc=*/0);
  ASSERT_EQ(rec.journeys().size(), 1u);
  const obs::Journey& j = rec.journeys()[0];
  EXPECT_EQ(j.uid, 8u);
  EXPECT_EQ(j.label_ts, 42);
  ASSERT_EQ(j.hops.size(), 2u);
  EXPECT_EQ(j.hops[0].kind, obs::HopKind::kCommit);
  EXPECT_EQ(j.TotalLatency(), 10);
}

// --- Cluster-level determinism ---------------------------------------------

enum class Scenario { kFull, kPartial, kChaos };

struct TraceRun {
  uint64_t fingerprint = 0;
  uint64_t completed_ops = 0;
  uint64_t events_recorded = 0;
  std::string trace_json;
  std::vector<obs::Journey> journeys;
};

// One small Saturn deployment per scenario: full replication, partial
// (exponential) replication, and a chaos run that kills the primary tree and
// fails over to a pre-deployed backup star while a link flaps.
TraceRun RunScenario(Scenario scenario, bool traced) {
  ClusterConfig config = SmallClusterConfig(Protocol::kSaturn);
  config.trace.enabled = traced;
  config.trace.journey_sample_every = 4;
  CorrelationPattern pattern = scenario == Scenario::kPartial
                                   ? CorrelationPattern::kExponential
                                   : CorrelationPattern::kFull;
  Cluster cluster(config, SmallReplicas(config, pattern), UniformClientHomes(3, 4),
                  SyntheticGenerators(DefaultWorkload()));
  if (scenario == Scenario::kChaos) {
    FaultPlan plan;
    std::string error;
    EXPECT_TRUE(ParseFaultPlan("500:killtree:0;800:cut:0-1;1100:heal:0-1",
                               &plan, &error))
        << error;
    cluster.InstallFaultPlan(plan);
    cluster.metadata_service()->DeployTree(
        1, StarTopology(config.dc_sites, config.dc_sites[1]));
  }
  cluster.Run(Millis(300), Millis(1200), Millis(600));

  TraceRun out;
  out.fingerprint = cluster.sim().executed_events();
  out.completed_ops = cluster.metrics().completed_ops();
  if (traced) {
    out.events_recorded = cluster.trace()->events_recorded();
    out.trace_json = cluster.trace()->ExportJson();
    out.journeys = cluster.trace()->journeys();
  }
  return out;
}

TEST(TraceDeterminism, TracingNeverChangesTheFingerprint) {
  for (Scenario scenario : {Scenario::kFull, Scenario::kPartial, Scenario::kChaos}) {
    TraceRun off = RunScenario(scenario, /*traced=*/false);
    TraceRun on = RunScenario(scenario, /*traced=*/true);
    EXPECT_EQ(off.fingerprint, on.fingerprint)
        << "scenario " << static_cast<int>(scenario);
    EXPECT_EQ(off.completed_ops, on.completed_ops)
        << "scenario " << static_cast<int>(scenario);
    EXPECT_GT(on.events_recorded, 0u);
  }
}

TEST(TraceDeterminism, ExportIsByteIdenticalAcrossJobCounts) {
  std::vector<Scenario> scenarios = {Scenario::kFull, Scenario::kPartial,
                                     Scenario::kChaos};
  auto sweep = [&scenarios](int jobs) {
    return ParallelSweep(scenarios, jobs, [](Scenario s) {
      return RunScenario(s, /*traced=*/true).trace_json;
    });
  };
  std::vector<std::string> serial = sweep(1);
  std::vector<std::string> parallel = sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].empty()) << "scenario " << i;
    EXPECT_EQ(serial[i], parallel[i]) << "scenario " << i;
  }
}

TEST(TraceDeterminism, SampledJourneysAreCompletePaths) {
  TraceRun run = RunScenario(Scenario::kFull, /*traced=*/true);
  ASSERT_FALSE(run.journeys.empty());
  size_t with_visibility = 0;
  for (const obs::Journey& j : run.journeys) {
    ASSERT_FALSE(j.hops.empty());
    // Journeys always start at the frontend write that assigned the label.
    EXPECT_EQ(j.hops[0].kind, obs::HopKind::kCommit) << "uid " << j.uid;
    // Hops are appended at record time, so they are time-ordered.
    bool serializer_seen = false;
    for (size_t h = 1; h < j.hops.size(); ++h) {
      EXPECT_GE(j.hops[h].ts, j.hops[h - 1].ts) << "uid " << j.uid;
      if (j.hops[h].kind == obs::HopKind::kSerializer) {
        serializer_seen = true;
      }
      if (j.hops[h].kind == obs::HopKind::kVisible) {
        ++with_visibility;
        // Under full replication every label crosses the tree before it can
        // become visible remotely, so visibility implies a serializer hop.
        EXPECT_TRUE(serializer_seen) << "uid " << j.uid;
        break;
      }
    }
  }
  // The workload runs long enough that sampled labels reach remote DCs.
  EXPECT_GT(with_visibility, 0u);
}

}  // namespace
}  // namespace saturn
