// Unit tests for the sweep worker pool: batch completion, exception
// propagation, reuse across batches, and destructor drain.
#include "src/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace saturn {
namespace {

TEST(ThreadPool, RunsEveryJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, WaitRethrowsFirstException) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done, i] {
      if (i == 3) {
        throw std::runtime_error("job 3 failed");
      }
      done.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error is consumed: the pool is reusable and a clean batch succeeds.
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
}

TEST(ThreadPool, CountsSuppressedFailuresAcrossBatch) {
  // Several jobs in one batch throw; only one exception can propagate from
  // Wait(), but the rest must be counted, not silently dropped. failures()
  // tracks the lifetime total so a coordinator can notice mid-flight.
  ThreadPool pool(2);
  for (int i = 0; i < 6; ++i) {
    pool.Submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(pool.failures(), 6u);

  // A clean batch leaves the counter alone; the pool is healthy again.
  std::atomic<int> done{0};
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 1);
  EXPECT_EQ(pool.failures(), 6u);

  // A later failing batch keeps accumulating into the lifetime total.
  pool.Submit([] { throw std::runtime_error("again"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(pool.failures(), 7u);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(done.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPool, DestructorDrainsPendingJobs) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // No Wait(): the destructor must finish the queue before joining.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> done{0};
  pool.Submit([&done] { done.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(done.load(), 1);
}

}  // namespace
}  // namespace saturn
