// Unit tests for the message plane's small-buffer vector (inline_vec.h).
//
// The properties exercised here are the ones the simulator relies on:
// allocation-free operation below the inline bound, correct spill past it,
// shrink back to inline storage, safe relocation of move-only elements, and
// well-defined aliasing / self-assignment behaviour.
#include "src/common/inline_vec.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace saturn {
namespace {

using SmallVec = InlineVec<int64_t, 4>;

TEST(InlineVec, StaysInlineUpToCapacity) {
  SmallVec v;
  EXPECT_TRUE(v.empty());
  EXPECT_FALSE(v.spilled());
  EXPECT_EQ(v.capacity(), 4u);
  for (int64_t i = 0; i < 4; ++i) {
    v.push_back(i);
    EXPECT_FALSE(v.spilled());
  }
  EXPECT_EQ(v.size(), 4u);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(v[static_cast<size_t>(i)], i);
  }
}

TEST(InlineVec, SpillsPastCapacityAndPreservesContents) {
  SmallVec v;
  for (int64_t i = 0; i < 100; ++i) {
    v.push_back(i);
  }
  EXPECT_TRUE(v.spilled());
  EXPECT_EQ(v.size(), 100u);
  EXPECT_GE(v.capacity(), 100u);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(v[static_cast<size_t>(i)], i);
  }
}

TEST(InlineVec, SpillShrinkRoundTrip) {
  SmallVec v;
  for (int64_t i = 0; i < 20; ++i) {
    v.push_back(i);
  }
  ASSERT_TRUE(v.spilled());
  while (v.size() > 3) {
    v.pop_back();
  }
  EXPECT_TRUE(v.spilled());  // capacity never shrinks implicitly
  v.shrink_to_fit();
  EXPECT_FALSE(v.spilled());
  EXPECT_EQ(v.capacity(), 4u);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[1], 1);
  EXPECT_EQ(v[2], 2);
  // ... and it can spill again after the round trip.
  for (int64_t i = 3; i < 12; ++i) {
    v.push_back(i);
  }
  EXPECT_TRUE(v.spilled());
  for (int64_t i = 0; i < 12; ++i) {
    EXPECT_EQ(v[static_cast<size_t>(i)], i);
  }
}

TEST(InlineVec, ShrinkToFitIsANoOpWhenTooBigOrAlreadyInline) {
  SmallVec v{1, 2};
  v.shrink_to_fit();  // inline: no-op
  EXPECT_FALSE(v.spilled());
  for (int64_t i = 0; i < 10; ++i) {
    v.push_back(i);
  }
  ASSERT_TRUE(v.spilled());
  ASSERT_GT(v.size(), 4u);
  v.shrink_to_fit();  // more live elements than inline slots: must stay heap
  EXPECT_TRUE(v.spilled());
  EXPECT_EQ(v.size(), 12u);
}

TEST(InlineVec, AssignCountValuePicksTheRightOverload) {
  SmallVec v;
  // Both arguments are integral; must not bind to the iterator-pair template.
  v.assign(7, 0);
  EXPECT_EQ(v.size(), 7u);
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(v[i], 0);
  }
}

TEST(InlineVec, AssignIteratorPair) {
  std::vector<int64_t> src = {5, 6, 7, 8, 9, 10};
  SmallVec v{1, 2, 3};
  v.assign(src.begin(), src.end());
  ASSERT_EQ(v.size(), 6u);
  for (size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(v[i], src[i]);
  }
}

TEST(InlineVec, CopyAndCompare) {
  SmallVec a{1, 2, 3, 4, 5, 6};  // spilled
  SmallVec b = a;
  EXPECT_EQ(a, b);
  b.push_back(7);
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b);
  SmallVec c;
  c = a;  // copy-assign over a default-constructed (inline) vector
  EXPECT_EQ(a, c);
  a = a;  // self-copy-assignment must be a no-op
  EXPECT_EQ(a, c);
}

TEST(InlineVec, MoveStealsHeapBlock) {
  SmallVec a;
  for (int64_t i = 0; i < 16; ++i) {
    a.push_back(i);
  }
  const int64_t* heap = a.data();
  SmallVec b = std::move(a);
  EXPECT_EQ(b.data(), heap);  // ownership transfer, no relocation
  EXPECT_TRUE(a.empty());
  EXPECT_FALSE(a.spilled());
  EXPECT_EQ(b.size(), 16u);
  a.push_back(42);  // moved-from vector is reusable
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], 42);
}

TEST(InlineVec, MoveOfInlineVectorRelocates) {
  SmallVec a{1, 2, 3};
  SmallVec b = std::move(a);
  EXPECT_FALSE(b.spilled());
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[2], 3);
  EXPECT_TRUE(a.empty());
}

TEST(InlineVec, PushBackOfOwnElementDuringGrowth) {
  // emplace_back must copy the argument before relocating storage, or
  // push_back(v[0]) at the capacity boundary reads freed memory.
  SmallVec v{10, 20, 30, 40};
  ASSERT_EQ(v.size(), v.capacity());
  v.push_back(v[0]);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v.back(), 10);
}

TEST(InlineVec, IteratorsInvalidatedBySpillButStableOtherwise) {
  SmallVec v{1, 2, 3};
  int64_t* before = v.data();
  v.push_back(4);  // fills inline storage, no spill
  EXPECT_EQ(v.data(), before);
  v.push_back(5);  // crosses the spill boundary
  EXPECT_TRUE(v.spilled());
  EXPECT_NE(v.data(), before);
  // Past the spill, growth below capacity keeps pointers stable.
  int64_t* heap = v.data();
  while (v.size() < v.capacity()) {
    v.push_back(0);
  }
  EXPECT_EQ(v.data(), heap);
}

TEST(InlineVec, EraseShiftsTail) {
  SmallVec v{1, 2, 3, 4, 5, 6};
  auto it = v.erase(v.begin() + 2);
  EXPECT_EQ(*it, 4);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 4);
  EXPECT_EQ(v[4], 6);
}

TEST(InlineVec, ResizeGrowsValueInitializedAndShrinksDestroying) {
  SmallVec v{7, 8};
  v.resize(6);
  ASSERT_EQ(v.size(), 6u);
  EXPECT_EQ(v[0], 7);
  EXPECT_EQ(v[5], 0);
  v.resize(1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 7);
  v.resize(3, 9);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 9);
  EXPECT_EQ(v[2], 9);
}

// --- move-only element types ----------------------------------------------

TEST(InlineVecMoveOnly, SpillsAndDrainsUniquePtrs) {
  InlineVec<std::unique_ptr<int>, 2> v;
  for (int i = 0; i < 10; ++i) {
    v.push_back(std::make_unique<int>(i));
  }
  EXPECT_TRUE(v.spilled());
  ASSERT_EQ(v.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(*v[static_cast<size_t>(i)], i);
  }
  InlineVec<std::unique_ptr<int>, 2> w = std::move(v);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(*w[9], 9);
  w.erase(w.begin());
  EXPECT_EQ(*w[0], 1);
  while (w.size() > 2) {
    w.pop_back();
  }
  w.shrink_to_fit();
  EXPECT_FALSE(w.spilled());
  EXPECT_EQ(*w[0], 1);
  EXPECT_EQ(*w[1], 2);
}

// Non-trivially-copyable elements exercise the element-wise Relocate path.
TEST(InlineVecNonTrivial, StringsSurviveSpillAndCopy) {
  InlineVec<std::string, 2> v;
  const std::string long_str(64, 'x');  // defeat SSO so moves matter
  for (int i = 0; i < 6; ++i) {
    v.push_back(long_str + std::to_string(i));
  }
  EXPECT_TRUE(v.spilled());
  InlineVec<std::string, 2> copy = v;
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(copy[static_cast<size_t>(i)], long_str + std::to_string(i));
  }
  copy.clear();
  EXPECT_TRUE(copy.empty());
  EXPECT_EQ(v.size(), 6u);
}

}  // namespace
}  // namespace saturn
