// Chaos x drift composition suite: seeded random fault schedules running
// *concurrently* with latency drift and a mid-run datacenter join.
//
// The chaos property suite proves Saturn survives faults in a static world;
// this suite proves the two planes compose: while links are cut, crashed and
// spiked at random, the base matrix itself is ramping and a deferred
// datacenter joins the metadata service live (stayers epoch-switch, joiner
// bootstraps through timestamp mode, its clients start mid-run). The
// invariants are the same as ever — and that is the point:
//
//   1. Safety: the causality oracle stays clean.
//   2. Liveness: every update that committed anywhere reaches all its
//      replicas once the faults heal (the joiner included).
//   3. Convergence: every active datacenter ends in stream mode on one agreed
//      epoch, and the join completed.
//
// The adaptive failure detector is load-bearing here: with the static
// timeout, the drift ramps alone would fake dead trees. Tree kills stay off —
// epochs belong to the reconfiguration controller in a dynamic deployment,
// and random fault-plane failovers would race its switches (the controller
// serializes against *observed* failovers instead, which cuts and crashes
// still exercise).
//
// Simulations run on the ParallelSweep worker pool; all gtest assertions
// happen on the main thread in seed order. The tsan_smoke ctest label runs
// this binary with SATURN_JOBS=4 under ThreadSanitizer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fault/chaos.h"
#include "src/fault/drift_plan.h"
#include "src/runtime/sweep.h"
#include "tests/test_util.h"

namespace saturn {
namespace {

struct DriftChaosVerdict {
  std::string context;
  bool oracle_clean = false;
  std::string first_violation;
  size_t missing_count = 0;
  std::string first_missing;
  uint64_t joins = 0;
  bool controller_busy = false;
  std::vector<bool> in_timestamp_mode;
  std::vector<uint32_t> epochs;
};

DriftChaosVerdict RunDriftChaosSim(uint64_t seed) {
  // Four datacenters: Ireland / Frankfurt / Tokyo active from the start,
  // North Virginia deferred until its join event.
  ClusterConfig config = SmallClusterConfig(Protocol::kSaturn);
  config.dc_sites = {kIreland, kFrankfurt, kTokyo, kNVirginia};
  config.dynamic.enabled = true;
  config.dynamic.deferred_dcs = {3};
  ReplicaMap replicas = SmallReplicas(config, CorrelationPattern::kFull);
  Cluster cluster(config, std::move(replicas), UniformClientHomes(4, 3),
                  SyntheticGenerators(DefaultWorkload()));
  for (DcId dc = 0; dc < 4; ++dc) {
    cluster.saturn_dc(dc)->set_fallback_timeout(Millis(150));
  }

  // Random faults over the active window...
  ChaosOptions options;
  options.seed = seed;
  options.start = Millis(1500);
  options.end = Millis(3300);
  options.allow_lossy = true;
  options.allow_crash = true;
  options.tree_kill_percent = 0;  // epochs belong to the controller here
  FaultPlan plan = GenerateChaosPlan(options, config.dc_sites);
  cluster.InstallFaultPlan(plan);

  // ...composed with drift of the base matrix and a mid-run join. The ramps
  // roughly double Tokyo's links while the fault plan is live.
  DriftPlan drift;
  std::string error;
  bool parsed = ParseDriftPlan(
      "1500:ramp:3-5:214:1200;1800:ramp:4-5:236:1200;2500:join:3", &drift, &error);
  SAT_CHECK_MSG(parsed, "%s", error.c_str());
  cluster.InstallDriftPlan(drift);

  cluster.StopClientsAt(Millis(4500));
  cluster.Run(Seconds(1), Seconds(2), /*drain=*/Seconds(4));

  DriftChaosVerdict v;
  v.context = "seed=" + std::to_string(seed) + " plan=[" + plan.ToString() +
              "] drift=[" + drift.ToString() + "]";
  v.oracle_clean = cluster.oracle()->Clean();
  if (!v.oracle_clean && !cluster.oracle()->violations().empty()) {
    v.first_violation = cluster.oracle()->violations().front();
  }
  auto missing = cluster.oracle()->MissingReplicas();
  v.missing_count = missing.size();
  if (!missing.empty()) {
    v.first_missing = missing.front();
  }
  v.joins = cluster.reconfig_controller()->joins();
  v.controller_busy = cluster.reconfig_controller()->busy();
  for (DcId dc = 0; dc < 4; ++dc) {
    v.in_timestamp_mode.push_back(cluster.saturn_dc(dc)->in_timestamp_mode());
    v.epochs.push_back(cluster.saturn_dc(dc)->current_epoch());
  }
  return v;
}

TEST(DriftChaos, SaturnSurvivesChaosUnderDriftWithMidRunJoin) {
  std::vector<uint64_t> seeds;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    seeds.push_back(seed);
  }
  std::vector<DriftChaosVerdict> verdicts =
      ParallelSweep(seeds, ResolveJobs(), RunDriftChaosSim);
  for (const DriftChaosVerdict& v : verdicts) {
    EXPECT_TRUE(v.oracle_clean) << v.context << "\nfirst violation: " << v.first_violation;
    EXPECT_EQ(v.missing_count, 0u)
        << v.context << "\n" << v.missing_count
        << " updates missing replicas, first: " << v.first_missing;
    EXPECT_EQ(v.joins, 1u) << v.context << "\njoin did not execute";
    EXPECT_FALSE(v.controller_busy) << v.context << "\noperation still in flight at end";
    ASSERT_EQ(v.epochs.size(), 4u) << v.context;
    for (DcId dc = 0; dc < 4; ++dc) {
      EXPECT_FALSE(v.in_timestamp_mode[dc])
          << v.context << "\ndc " << dc << " stuck in timestamp mode";
      EXPECT_EQ(v.epochs[dc], v.epochs[0])
          << v.context << "\ndc " << dc << " disagrees on the epoch";
    }
  }
}

}  // namespace
}  // namespace saturn
