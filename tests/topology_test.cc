#include <gtest/gtest.h>

#include "src/saturn/topology.h"

namespace saturn {
namespace {

// A 4-DC tree: dc0 - s0 - s1 - dc2, with dc1 on s0 and dc3 on s1.
TreeTopology TwoSerializerTree() {
  TreeTopology tree;
  uint32_t s0 = tree.AddSerializer(0);
  uint32_t s1 = tree.AddSerializer(2);
  uint32_t d0 = tree.AddDcLeaf(0, 0);
  uint32_t d1 = tree.AddDcLeaf(1, 1);
  uint32_t d2 = tree.AddDcLeaf(2, 2);
  uint32_t d3 = tree.AddDcLeaf(3, 3);
  tree.AddEdge(s0, s1);
  tree.AddEdge(s0, d0);
  tree.AddEdge(s0, d1);
  tree.AddEdge(s1, d2);
  tree.AddEdge(s1, d3);
  return tree;
}

LatencyMatrix FourSiteMatrix() {
  LatencyMatrix m(4);
  m.Set(0, 1, Millis(10));
  m.Set(0, 2, Millis(50));
  m.Set(0, 3, Millis(60));
  m.Set(1, 2, Millis(55));
  m.Set(1, 3, Millis(65));
  m.Set(2, 3, Millis(10));
  return m;
}

TEST(TreeTopology, ValidatesWellFormedTree) {
  TreeTopology tree = TwoSerializerTree();
  std::string error;
  EXPECT_TRUE(tree.Validate(&error)) << error;
}

TEST(TreeTopology, RejectsCycle) {
  TreeTopology tree = TwoSerializerTree();
  tree.AddEdge(2, 5);  // extra edge creates a cycle
  EXPECT_FALSE(tree.Validate());
}

TEST(TreeTopology, RejectsDisconnected) {
  TreeTopology tree;
  tree.AddSerializer(0);
  tree.AddDcLeaf(0, 0);
  tree.AddDcLeaf(1, 1);
  tree.AddEdge(0, 1);
  // Node 2 (dc1) is disconnected; edge count is also off.
  EXPECT_FALSE(tree.Validate());
}

TEST(TreeTopology, RejectsDcAsRelay) {
  TreeTopology tree;
  uint32_t d0 = tree.AddDcLeaf(0, 0);
  uint32_t d1 = tree.AddDcLeaf(1, 1);
  uint32_t d2 = tree.AddDcLeaf(2, 2);
  tree.AddEdge(d0, d1);
  tree.AddEdge(d1, d2);  // dc1 would relay labels
  EXPECT_FALSE(tree.Validate());
}

TEST(TreeTopology, PathLatencySumsLinks) {
  TreeTopology tree = TwoSerializerTree();
  LatencyMatrix m = FourSiteMatrix();
  auto lat = [&m](SiteId a, SiteId b) { return a == b ? Micros(250) : m.Get(a, b); };
  // dc0 (site 0) -> s0 (site 0) -> s1 (site 2) -> dc2 (site 2):
  // intra-site + 50ms + intra-site.
  EXPECT_EQ(tree.PathLatency(0, 2, lat), Micros(250) + Millis(50) + Micros(250));
}

TEST(TreeTopology, PathLatencyIncludesArtificialDelays) {
  TreeTopology tree = TwoSerializerTree();
  tree.SetDelay(0, 1, Millis(7));  // s0 -> s1 direction only
  LatencyMatrix m = FourSiteMatrix();
  auto lat = [&m](SiteId a, SiteId b) { return a == b ? 0 : m.Get(a, b); };
  EXPECT_EQ(tree.PathLatency(0, 2, lat), Millis(57));
  EXPECT_EQ(tree.PathLatency(2, 0, lat), Millis(50));  // reverse unaffected
}

TEST(TreeTopology, ReachableThroughSplitsSubtrees) {
  TreeTopology tree = TwoSerializerTree();
  // From s0 towards s1: dc2 and dc3.
  DcSet right = tree.ReachableThrough(0, 1);
  EXPECT_EQ(right.Size(), 2);
  EXPECT_TRUE(right.Contains(2));
  EXPECT_TRUE(right.Contains(3));
  // From s1 towards s0: dc0 and dc1.
  DcSet left = tree.ReachableThrough(1, 0);
  EXPECT_TRUE(left.Contains(0));
  EXPECT_TRUE(left.Contains(1));
  // Through a leaf edge: only that leaf.
  EXPECT_EQ(tree.ReachableThrough(0, 2), DcSet::Single(0));
}

TEST(TreeTopology, LeafLookup) {
  TreeTopology tree = TwoSerializerTree();
  EXPECT_EQ(tree.LeafOf(2), 4u);
  EXPECT_EQ(tree.LeafOf(9), UINT32_MAX);
}

TEST(TreeTopology, FusesSameSiteSerializers) {
  TreeTopology tree;
  uint32_t s0 = tree.AddSerializer(1);
  uint32_t s1 = tree.AddSerializer(1);  // same site, fusable
  uint32_t d0 = tree.AddDcLeaf(0, 0);
  uint32_t d1 = tree.AddDcLeaf(1, 1);
  uint32_t d2 = tree.AddDcLeaf(2, 2);
  tree.AddEdge(s0, s1);
  tree.AddEdge(s0, d0);
  tree.AddEdge(s1, d1);
  tree.AddEdge(s1, d2);
  ASSERT_TRUE(tree.Validate());
  EXPECT_EQ(tree.FuseSerializers(), 1u);
  EXPECT_EQ(tree.NumSerializers(), 1u);
  EXPECT_TRUE(tree.Validate());
  // All three DCs still connected through the fused serializer.
  for (DcId dc = 0; dc < 3; ++dc) {
    EXPECT_NE(tree.LeafOf(dc), UINT32_MAX);
  }
}

TEST(TreeTopology, DoesNotFuseAcrossSitesOrDelays) {
  TreeTopology tree = TwoSerializerTree();  // s0 at site 0, s1 at site 2
  EXPECT_EQ(tree.FuseSerializers(), 0u);

  TreeTopology delayed;
  uint32_t s0 = delayed.AddSerializer(1);
  uint32_t s1 = delayed.AddSerializer(1);
  uint32_t d0 = delayed.AddDcLeaf(0, 0);
  uint32_t d1 = delayed.AddDcLeaf(1, 1);
  delayed.AddEdge(s0, s1, Millis(5), 0);  // artificial delay blocks fusion
  delayed.AddEdge(s0, d0);
  delayed.AddEdge(s1, d1);
  EXPECT_EQ(delayed.FuseSerializers(), 0u);
}

TEST(TreeTopology, StarTopologyShape) {
  TreeTopology star = StarTopology({0, 1, 2, 3}, 2);
  EXPECT_TRUE(star.Validate());
  EXPECT_EQ(star.NumSerializers(), 1u);
  // The hub reaches each DC through its leaf edge.
  for (DcId dc = 0; dc < 4; ++dc) {
    EXPECT_NE(star.LeafOf(dc), UINT32_MAX);
  }
}

}  // namespace
}  // namespace saturn
