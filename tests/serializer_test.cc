#include <gtest/gtest.h>

#include <vector>

#include "src/saturn/serializer.h"

namespace saturn {
namespace {

class EnvelopeSink : public Actor {
 public:
  explicit EnvelopeSink(Network* net = nullptr) : net_(net) {}

  void HandleMessage(NodeId from, const Message& msg) override {
    if (const auto* env = std::get_if<LabelEnvelope>(&msg)) {
      received.push_back(*env);
      // Reliable tree links expect the endpoint to acknowledge; without the
      // ack the serializer retransmits forever and RunAll never drains.
      if (net_ != nullptr && env->link_seq != 0) {
        LinkAck ack;
        ack.acked = env->link_seq;
        net_->Send(node_id(), from, ack);
      }
    }
  }
  std::vector<LabelEnvelope> received;

 private:
  Network* net_;
};

LabelEnvelope Env(int64_t ts, DcSet interest) {
  LabelEnvelope env;
  env.label.ts = ts;
  env.interest = interest;
  return env;
}

class SerializerTest : public ::testing::Test {
 protected:
  SerializerTest()
      : matrix_(MakeMatrix()), net_(&sim_, matrix_) {}

  static LatencyMatrix MakeMatrix() {
    LatencyMatrix m(3);
    m.Set(0, 1, Millis(10));
    m.Set(0, 2, Millis(20));
    m.Set(1, 2, Millis(25));
    return m;
  }

  Simulator sim_;
  LatencyMatrix matrix_;
  Network net_;
};

TEST_F(SerializerTest, RoutesToInterestedLinksOnly) {
  Serializer s(&sim_, &net_, 0, 1);
  net_.Attach(&s, 0);
  EnvelopeSink source(&net_);
  EnvelopeSink dc1(&net_);
  EnvelopeSink dc2(&net_);
  net_.Attach(&source, 0);
  net_.Attach(&dc1, 1);
  net_.Attach(&dc2, 2);
  s.AddLink({source.node_id(), DcSet::Single(0), 0});
  s.AddLink({dc1.node_id(), DcSet::Single(1), 0});
  s.AddLink({dc2.node_id(), DcSet::Single(2), 0});

  net_.Send(source.node_id(), s.node_id(), Env(1, DcSet::Single(1)));
  net_.Send(source.node_id(), s.node_id(), Env(2, DcSet::Single(2)));
  sim_.RunAll();
  ASSERT_EQ(dc1.received.size(), 1u);
  EXPECT_EQ(dc1.received[0].label.ts, 1);
  ASSERT_EQ(dc2.received.size(), 1u);
  EXPECT_EQ(dc2.received[0].label.ts, 2);
  // Nothing echoed back to the source link.
  EXPECT_TRUE(source.received.empty());
  EXPECT_EQ(s.routed(), 2u);
}

TEST_F(SerializerTest, PreservesArrivalOrder) {
  Serializer s(&sim_, &net_, 0, 1);
  net_.Attach(&s, 0);
  EnvelopeSink source(&net_);
  EnvelopeSink dc1(&net_);
  net_.Attach(&source, 0);
  net_.Attach(&dc1, 1);
  s.AddLink({source.node_id(), DcSet::Single(0), 0});
  s.AddLink({dc1.node_id(), DcSet::Single(1), 0});

  for (int i = 0; i < 50; ++i) {
    net_.Send(source.node_id(), s.node_id(), Env(i, DcSet::Single(1)));
  }
  sim_.RunAll();
  ASSERT_EQ(dc1.received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(dc1.received[i].label.ts, i);
  }
}

TEST_F(SerializerTest, ArtificialDelayPostponesForwarding) {
  Serializer s(&sim_, &net_, 0, 1);
  net_.Attach(&s, 0);
  EnvelopeSink source(&net_);
  EnvelopeSink dc1(&net_);
  net_.Attach(&source, 0);
  net_.Attach(&dc1, 1);
  s.AddLink({source.node_id(), DcSet::Single(0), 0});
  s.AddLink({dc1.node_id(), DcSet::Single(1), Millis(40)});

  net_.Send(source.node_id(), s.node_id(), Env(1, DcSet::Single(1)));
  sim_.RunAll();
  // intra-site hop to s, 40ms artificial delay, 10ms link to site 1.
  EXPECT_GE(sim_.Now(), Millis(50));
  ASSERT_EQ(dc1.received.size(), 1u);
}

TEST_F(SerializerTest, ChainReplicationDeliversInOrder) {
  Serializer s(&sim_, &net_, 0, 3);  // 2 chain replicas
  net_.Attach(&s, 0);
  EnvelopeSink source(&net_);
  EnvelopeSink dc1(&net_);
  net_.Attach(&source, 0);
  net_.Attach(&dc1, 1);
  s.AddLink({source.node_id(), DcSet::Single(0), 0});
  s.AddLink({dc1.node_id(), DcSet::Single(1), 0});
  EXPECT_EQ(s.live_replicas(), 3u);

  for (int i = 0; i < 20; ++i) {
    net_.Send(source.node_id(), s.node_id(), Env(i, DcSet::Single(1)));
  }
  sim_.RunAll();
  ASSERT_EQ(dc1.received.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(dc1.received[i].label.ts, i);
  }
}

TEST_F(SerializerTest, SurvivesReplicaFailureWithoutLossOrReorder) {
  Serializer s(&sim_, &net_, 0, 3);
  net_.Attach(&s, 0);
  EnvelopeSink source(&net_);
  EnvelopeSink dc1(&net_);
  net_.Attach(&source, 0);
  net_.Attach(&dc1, 1);
  s.AddLink({source.node_id(), DcSet::Single(0), 0});
  s.AddLink({dc1.node_id(), DcSet::Single(1), 0});

  // First half in flight, then a replica dies mid-stream.
  for (int i = 0; i < 10; ++i) {
    net_.Send(source.node_id(), s.node_id(), Env(i, DcSet::Single(1)));
  }
  sim_.After(Micros(300), [&]() { EXPECT_TRUE(s.KillReplica(1)); });
  sim_.After(Micros(400), [&]() {
    for (int i = 10; i < 20; ++i) {
      net_.Send(source.node_id(), s.node_id(), Env(i, DcSet::Single(1)));
    }
  });
  sim_.RunAll();
  EXPECT_EQ(s.live_replicas(), 2u);
  ASSERT_EQ(dc1.received.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(dc1.received[i].label.ts, i);
  }
}

TEST_F(SerializerTest, KillingSameReplicaTwiceReportsFalse) {
  Serializer s(&sim_, &net_, 0, 2);
  net_.Attach(&s, 0);
  EXPECT_TRUE(s.KillReplica(1));
  EXPECT_FALSE(s.KillReplica(1));
}

TEST_F(SerializerTest, KillAllSilencesRouting) {
  Serializer s(&sim_, &net_, 0, 2);
  net_.Attach(&s, 0);
  EnvelopeSink source(&net_);
  EnvelopeSink dc1(&net_);
  net_.Attach(&source, 0);
  net_.Attach(&dc1, 1);
  s.AddLink({source.node_id(), DcSet::Single(0), 0});
  s.AddLink({dc1.node_id(), DcSet::Single(1), 0});

  s.KillAll();
  EXPECT_FALSE(s.Alive());
  EXPECT_EQ(s.live_replicas(), 0u);
  net_.Send(source.node_id(), s.node_id(), Env(1, DcSet::Single(1)));
  sim_.RunAll();
  EXPECT_TRUE(dc1.received.empty());
}

}  // namespace
}  // namespace saturn
