#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/random.h"

namespace saturn {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, ForkIndependence) {
  Rng parent(21);
  Rng child = parent.Fork();
  // The child stream should not reproduce the parent stream.
  Rng parent2(21);
  parent2.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.Next() == parent.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(Zipf, SkewsTowardsLowRanks) {
  ZipfSampler zipf(1000, 0.99);
  Rng rng(31);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(Zipf, ZeroThetaIsUniform) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(37);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[zipf.Sample(rng)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

}  // namespace
}  // namespace saturn
