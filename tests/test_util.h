// Shared helpers for integration tests: small, fast clusters.
#ifndef TESTS_TEST_UTIL_H_
#define TESTS_TEST_UTIL_H_

#include "src/runtime/cluster.h"

namespace saturn {

// A 3-datacenter deployment over Ireland / Frankfurt / Tokyo with small gear
// counts and keyspaces so integration tests run in well under a second of
// wall-clock time.
inline ClusterConfig SmallClusterConfig(Protocol protocol) {
  ClusterConfig config;
  config.protocol = protocol;
  config.dc_sites = {kIreland, kFrankfurt, kTokyo};
  config.latencies = Ec2Latencies();
  config.dc.num_gears = 2;
  config.enable_oracle = true;
  config.seed = 1234;
  return config;
}

inline KeyspaceConfig SmallKeyspace(CorrelationPattern pattern = CorrelationPattern::kFull,
                                    uint32_t degree = 3) {
  KeyspaceConfig keyspace;
  keyspace.num_keys = 600;
  keyspace.pattern = pattern;
  keyspace.replication_degree = degree;
  return keyspace;
}

inline ReplicaMap SmallReplicas(const ClusterConfig& config,
                                CorrelationPattern pattern = CorrelationPattern::kFull,
                                uint32_t degree = 3) {
  return ReplicaMap::Generate(SmallKeyspace(pattern, degree), config.dc_sites,
                              config.latencies);
}

inline SyntheticOpGenerator::Config DefaultWorkload(double remote_reads = 0.0) {
  SyntheticOpGenerator::Config workload;
  workload.write_fraction = 0.1;
  workload.remote_read_fraction = remote_reads;
  workload.value_size = 2;
  return workload;
}

}  // namespace saturn

#endif  // TESTS_TEST_UTIL_H_
