// saturn_sim — command-line experiment driver.
//
// Runs one deployment of any supported protocol on the simulated EC2 network
// and prints throughput, visibility statistics and (optionally) per-pair CDFs
// as CSV for plotting. Everything the figure benches do, parameterized.
//
// Examples:
//   saturn_sim --protocol=saturn --dcs=7 --seconds=3
//   saturn_sim --protocol=gentlerain --pattern=full --writes=0.25
//   saturn_sim --protocol=saturn --tree=star --hub=3 --csv=/tmp/vis.csv
//   saturn_sim --protocol=cops --prune=0 --degree=2 --oracle
//   saturn_sim --protocol=saturn --backup --oracle --fault-plan="1500:cut:3-5:drop;2100:heal:3-5"
//   saturn_sim --protocol=saturn --seeds=10 --jobs=4 --csv=/tmp/vis.csv
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "src/runtime/cluster.h"
#include "src/runtime/sweep.h"

namespace saturn {
namespace {

struct Flags {
  std::map<std::string, std::string> values;

  bool Parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg);
        return false;
      }
      const char* eq = std::strchr(arg, '=');
      if (eq == nullptr) {
        values[arg + 2] = "1";  // boolean flag
      } else {
        values[std::string(arg + 2, eq - arg - 2)] = eq + 1;
      }
    }
    return true;
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atof(it->second.c_str());
  }
  long GetInt(const std::string& key, long fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atol(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values.count(key) != 0; }
};

void Usage() {
  std::printf(
      "saturn_sim — run one simulated geo-replicated deployment\n\n"
      "  --protocol=eventual|saturn|saturn-p2p|gentlerain|cure|cops  (saturn)\n"
      "  --dcs=N             datacenters, 2..7 Table-1 regions          (7)\n"
      "  --pattern=exponential|proportional|uniform|full               (exponential)\n"
      "  --degree=N          replicas per key                           (3)\n"
      "  --keys=N            keyspace size                              (10000)\n"
      "  --writes=F          write fraction                             (0.1)\n"
      "  --remote-reads=F    remote-read fraction of reads              (0)\n"
      "  --zipf=F            key popularity skew theta                  (0)\n"
      "  --value=N           value size in bytes                        (2)\n"
      "  --clients=N         clients per datacenter (0 with --open-loop) (32)\n"
      "  --open-loop=N       open-loop engine: N logical sessions multiplexed\n"
      "                      onto one mux per DC over a streaming power-law\n"
      "                      social graph; session ids double as key ids, and\n"
      "                      with --clients=0 the keyspace is procedural (no\n"
      "                      per-key tables), so N can be millions         (off)\n"
      "  --arrival-rate=F    open-loop offered load per DC, ops/sec     (1000)\n"
      "  --arrival-plan=SPEC scripted traffic shape; `;`-separated timed events:\n"
      "                        <ms>:rate:<dc|*>:<ops>        set absolute rate\n"
      "                        <ms>:ramp:<dc|*>:<ops>:<durms> linear ramp to it\n"
      "                        <ms>:burst:<dc|*>:<mult>:<durms> flash crowd\n"
      "                        <ms>:diurnal:<dc|*>:<amp>:<periodms>[:<phasems>]\n"
      "                      rate/ramp replace the base rate; burst/diurnal\n"
      "                      multiply whatever is in effect\n"
      "  --zipf-sessions=F   session-popularity skew theta (hot users)     (0)\n"
      "  --max-queue=N       per-session queue before arrivals shed        (8)\n"
      "  --edges=N           streaming graph attachment m (mean degree 2m) (15)\n"
      "  --expected-keys=N   pre-size each DC's store for N distinct keys  (0)\n"
      "  --gears=N           storage servers per datacenter             (4)\n"
      "  --sharded-gears     saturn: per-gear frontend/sink lanes (DESIGN.md §12)\n"
      "  --backend=sim|realtime  execution backend: deterministic simulator or\n"
      "                      wall-clock worker threads (non-reproducible;\n"
      "                      single-run only, no drift/trace/backup)     (sim)\n"
      "  --workers=N         realtime backend worker threads             (2)\n"
      "  --seconds=N         measured simulated seconds                 (3)\n"
      "  --warmup=N          warm-up simulated seconds                  (1)\n"
      "  --tree=generated|star  Saturn tree configuration               (generated)\n"
      "  --hub=SITE          star hub region index (0=NV..6=S)          (3=Ireland)\n"
      "  --chain=N           chain replicas per serializer              (1)\n"
      "  --prune=0|1         COPS context pruning                       (1)\n"
      "  --batch-deadline=MS metadata-link batching window; 0 = per-label\n"
      "                      sends, byte-identical to no batching        (0)\n"
      "  --batch-max-labels=N  flush a batch at N labels                 (32)\n"
      "  --batch-max-bytes=N   flush a batch at N encoded bytes          (1024)\n"
      "  --seed=N            RNG seed                                   (42)\n"
      "  --oracle            enable the causality oracle\n"
      "  --csv=PATH          dump per-pair visibility CDFs (and fault events) as CSV\n"
      "  --fault-plan=SPEC   inject faults; `;`-separated timed events:\n"
      "                        <ms>:cut:<a>-<b>[:drop]   cut a site link (lossy w/ drop)\n"
      "                        <ms>:heal:<a>-<b>         heal it\n"
      "                        <ms>:lat:<a>-<b>:<ms>     extra one-way latency\n"
      "                        <ms>:unlat:<a>-<b>        clear the extra latency\n"
      "                        <ms>:crash:<dc>           crash a datacenter\n"
      "                        <ms>:recover:<dc>         recover it\n"
      "                        <ms>:killtree:<epoch>     kill an epoch's serializers\n"
      "                        <ms>:killchain:<e>:<r>    kill one chain replica\n"
      "  --drift-plan=SPEC   drift the world; `;`-separated timed events:\n"
      "                        <ms>:step:<a>-<b>:<ms>        set base one-way latency\n"
      "                        <ms>:stepone:<from>-<to>:<ms> directed variant\n"
      "                        <ms>:ramp:<a>-<b>:<ms>:<durms>    linear ramp\n"
      "                        <ms>:rampone:<from>-<to>:<ms>:<durms>\n"
      "                        <ms>:join:<dc>                datacenter joins the tree\n"
      "                        <ms>:leave:<dc>               datacenter leaves it\n"
      "                      joined DCs start deferred (no clients, no tree)\n"
      "  --join=MS:DC        shorthand for a single join event\n"
      "  --leave=MS:DC       shorthand for a single leave event\n"
      "  --dynamic           saturn: enable the dynamic-topology plane (probe\n"
      "                      agents, adaptive failure detector, online tree-\n"
      "                      reconfiguration controller); implied by join/leave\n"
      "  --probe-interval=MS probe cadence                              (100)\n"
      "  --reconfig-eval=MS  controller evaluation interval             (250)\n"
      "  --reconfig-degrade=F  mismatch ratio that arms the trigger     (1.25)\n"
      "  --reconfig-hysteresis=N  consecutive degraded evals required   (3)\n"
      "  --reconfig-cooldown=MS  quiet time after an operation          (2000)\n"
      "  --leave-drain=MS    grace between client stop and leave switch (500)\n"
      "  --static-detector   keep the static fallback timeout (no RTT scaling)\n"
      "  --rtt-multiplier=F  adaptive silence threshold = F * max RTT   (3)\n"
      "  --backup            saturn: pre-deploy a backup star tree as epoch 1\n"
      "  --stop-clients=MS   stop all clients at MS (quiescent recovery tail)\n"
      "  --seeds=N           sweep mode: run seeds seed..seed+N-1 concurrently\n"
      "                      on a worker pool; prints a per-seed table plus\n"
      "                      merged visibility statistics, and --csv dumps the\n"
      "                      CDFs of the per-pair histograms merged across seeds\n"
      "  --jobs=N            sweep worker threads (default: SATURN_JOBS env or\n"
      "                      all hardware threads); results are reported in seed\n"
      "                      order, so output is identical for every jobs value\n"
      "  --trace-out=PATH    record a structured trace and write it as Chrome\n"
      "                      trace-event JSON (load in Perfetto); single-run only\n"
      "  --trace-label[=N]   print the slowest N sampled label journeys,\n"
      "                      hop by hop (5); implies tracing; single-run only\n"
      "  --trace-ring=N      trace ring-buffer capacity in events (65536)\n"
      "  --metrics-out=PATH  write every run counter and histogram as JSON;\n"
      "                      with --seeds the snapshots are merged in seed order\n"
      "  --attribution       decompose sampled visibilities into phases\n"
      "                      (commit-sink, serializer, tree, buffer, stability)\n"
      "                      per DC pair and print the report; never perturbs\n"
      "                      the run (fingerprint-identical on or off); with\n"
      "                      --seeds the profiles merge in seed order\n"
      "  --timeseries-out=PATH  sample every registry metric on a fixed sim-time\n"
      "                      window into JSON (schema saturn-timeseries-v1);\n"
      "                      with --seeds the series merge in seed order, so the\n"
      "                      bytes are identical for every --jobs value; with\n"
      "                      --attribution the file embeds the phase profile\n"
      "  --timeseries-window=MS  time-series window size                (100)\n");
}

// Everything needed to assemble one cluster, parsed and validated once; the
// seed sweep re-stamps `config.seed` per run.
struct SimSetup {
  ClusterConfig config;
  KeyspaceConfig keyspace;
  SyntheticOpGenerator::Config workload;
  FaultPlan plan;
  DriftPlan drift;
  uint32_t dcs = 0;
  uint32_t clients = 0;
  SimTime warmup = 0;
  SimTime measure = 0;
  SimTime stop_clients = 0;  // 0 = never
  bool backup = false;
  bool capture_metrics = false;  // sweep workers snapshot the registry
  bool capture_timeseries = false;
};

// Parses flags into a SimSetup. Returns false (with *exit_code set) on bad
// input.
bool BuildSetup(const Flags& flags, SimSetup* setup, int* exit_code) {
  static const std::map<std::string, Protocol> kProtocols = {
      {"eventual", Protocol::kEventual},     {"saturn", Protocol::kSaturn},
      {"saturn-p2p", Protocol::kSaturnTimestamp}, {"gentlerain", Protocol::kGentleRain},
      {"cure", Protocol::kCure},             {"cops", Protocol::kCops},
  };
  static const std::map<std::string, CorrelationPattern> kPatterns = {
      {"exponential", CorrelationPattern::kExponential},
      {"proportional", CorrelationPattern::kProportional},
      {"uniform", CorrelationPattern::kUniform},
      {"full", CorrelationPattern::kFull},
  };

  std::string protocol_name = flags.Get("protocol", "saturn");
  auto protocol_it = kProtocols.find(protocol_name);
  if (protocol_it == kProtocols.end()) {
    std::fprintf(stderr, "unknown protocol: %s\n", protocol_name.c_str());
    *exit_code = 2;
    return false;
  }
  auto pattern_it = kPatterns.find(flags.Get("pattern", "exponential"));
  if (pattern_it == kPatterns.end()) {
    std::fprintf(stderr, "unknown pattern: %s\n", flags.Get("pattern", "").c_str());
    *exit_code = 2;
    return false;
  }

  setup->dcs = static_cast<uint32_t>(flags.GetInt("dcs", 7));
  if (setup->dcs < 2 || setup->dcs > kNumEc2Regions) {
    std::fprintf(stderr, "--dcs must be 2..%u\n", kNumEc2Regions);
    *exit_code = 2;
    return false;
  }

  ClusterConfig& config = setup->config;
  config.protocol = protocol_it->second;
  config.dc_sites = Ec2Sites(setup->dcs);
  config.latencies = Ec2Latencies();
  config.dc.num_gears = static_cast<uint32_t>(flags.GetInt("gears", 4));
  config.tree_kind = flags.Get("tree", "generated") == "star" ? SaturnTreeKind::kStar
                                                              : SaturnTreeKind::kGenerated;
  config.star_hub = static_cast<SiteId>(flags.GetInt("hub", kIreland));
  config.chain_replicas = static_cast<uint32_t>(flags.GetInt("chain", 1));
  config.cops_prune = flags.GetInt("prune", 1) != 0;
  if (flags.Has("sharded-gears")) {
    if (protocol_it->second != Protocol::kSaturn &&
        protocol_it->second != Protocol::kSaturnTimestamp) {
      std::fprintf(stderr, "--sharded-gears requires a Saturn protocol\n");
      *exit_code = 2;
      return false;
    }
    config.dc.sharded_gears = true;
  }
  config.dc.batch_deadline = Millis(flags.GetInt("batch-deadline", 0));
  config.dc.batch_max_labels = static_cast<uint32_t>(flags.GetInt("batch-max-labels", 32));
  config.dc.batch_max_bytes = static_cast<uint32_t>(flags.GetInt("batch-max-bytes", 1024));
  config.enable_oracle = flags.Has("oracle");
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  setup->keyspace.num_keys = static_cast<uint64_t>(flags.GetInt("keys", 10000));
  setup->keyspace.pattern = pattern_it->second;
  setup->keyspace.replication_degree = static_cast<uint32_t>(flags.GetInt("degree", 3));

  setup->workload.write_fraction = flags.GetDouble("writes", 0.1);
  setup->workload.remote_read_fraction = flags.GetDouble("remote-reads", 0.0);
  setup->workload.zipf_theta = flags.GetDouble("zipf", 0.0);
  setup->workload.value_size = static_cast<uint32_t>(flags.GetInt("value", 2));

  if (flags.Has("open-loop")) {
    long sessions = flags.GetInt("open-loop", 0);
    if (sessions <= 0) {
      std::fprintf(stderr, "--open-loop needs a positive session count\n");
      *exit_code = 2;
      return false;
    }
    ClientProtocolMode mode = ClientModeFor(config.protocol);
    if (mode != ClientProtocolMode::kScalar && mode != ClientProtocolMode::kSaturn) {
      std::fprintf(stderr, "--open-loop supports label-only protocols "
                           "(eventual, gentlerain, saturn, saturn-p2p)\n");
      *exit_code = 2;
      return false;
    }
    config.open_loop.sessions = static_cast<uint64_t>(sessions);
    config.open_loop.arrival_rate = flags.GetDouble("arrival-rate", 1000);
    config.open_loop.zipf_theta = flags.GetDouble("zipf-sessions", 0.0);
    config.open_loop.max_queue = static_cast<uint32_t>(flags.GetInt("max-queue", 8));
    config.open_loop.edges_per_node = static_cast<uint32_t>(flags.GetInt("edges", 15));
    if (flags.Has("value")) {
      config.open_loop.mix.value_size = static_cast<uint32_t>(flags.GetInt("value", 256));
    }
    if (flags.Has("arrival-plan")) {
      std::string error;
      if (!ParseArrivalPlan(flags.Get("arrival-plan", ""), &config.open_loop.plan,
                            &error)) {
        std::fprintf(stderr, "bad --arrival-plan: %s\n", error.c_str());
        *exit_code = 2;
        return false;
      }
    }
    // Session user ids double as key ids: the keyspace must cover them.
    if (setup->keyspace.num_keys < config.open_loop.sessions) {
      setup->keyspace.num_keys = config.open_loop.sessions;
    }
  }
  config.dc.expected_keys = static_cast<uint64_t>(flags.GetInt("expected-keys", 0));

  setup->clients = static_cast<uint32_t>(
      flags.GetInt("clients", config.open_loop.sessions > 0 ? 0 : 32));
  setup->warmup = Seconds(flags.GetInt("warmup", 1));
  setup->measure = Seconds(flags.GetInt("seconds", 3));

  if (flags.Has("fault-plan")) {
    std::string error;
    if (!ParseFaultPlan(flags.Get("fault-plan", ""), &setup->plan, &error)) {
      std::fprintf(stderr, "bad --fault-plan: %s\n", error.c_str());
      *exit_code = 2;
      return false;
    }
  }
  if (flags.Has("drift-plan")) {
    std::string error;
    if (!ParseDriftPlan(flags.Get("drift-plan", ""), &setup->drift, &error)) {
      std::fprintf(stderr, "bad --drift-plan: %s\n", error.c_str());
      *exit_code = 2;
      return false;
    }
  }
  // --join / --leave are shorthand for single-event drift plans.
  for (const char* kind : {"join", "leave"}) {
    if (!flags.Has(kind)) {
      continue;
    }
    std::string spec = flags.Get(kind, "");
    size_t colon = spec.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--%s needs MS:DC\n", kind);
      *exit_code = 2;
      return false;
    }
    DriftEvent ev;
    ev.at = Millis(std::atol(spec.c_str()));
    ev.kind = std::strcmp(kind, "join") == 0 ? DriftKind::kJoin : DriftKind::kLeave;
    ev.dc = static_cast<DcId>(std::atol(spec.c_str() + colon + 1));
    setup->drift.events.push_back(ev);
  }
  setup->drift.Normalize();

  bool has_membership = !setup->drift.JoinedDcs().empty();
  for (const DriftEvent& ev : setup->drift.events) {
    if (ev.kind == DriftKind::kLeave) {
      has_membership = true;
    }
    if ((ev.kind == DriftKind::kJoin || ev.kind == DriftKind::kLeave) &&
        ev.dc >= setup->dcs) {
      std::fprintf(stderr, "drift join/leave dc %u out of range (dcs=%u)\n",
                   static_cast<unsigned>(ev.dc), setup->dcs);
      *exit_code = 2;
      return false;
    }
  }
  if (flags.Has("dynamic") || has_membership) {
    if (config.protocol != Protocol::kSaturn) {
      std::fprintf(stderr, "--dynamic / drift join/leave require --protocol=saturn\n");
      *exit_code = 2;
      return false;
    }
    config.dynamic.enabled = true;
    config.dynamic.deferred_dcs = setup->drift.JoinedDcs();
    config.dynamic.monitor.probe_interval = Millis(flags.GetInt("probe-interval", 100));
    config.dynamic.controller.eval_interval = Millis(flags.GetInt("reconfig-eval", 250));
    config.dynamic.controller.degrade_ratio = flags.GetDouble("reconfig-degrade", 1.25);
    config.dynamic.controller.hysteresis_evals =
        static_cast<uint32_t>(flags.GetInt("reconfig-hysteresis", 3));
    config.dynamic.controller.cooldown = Millis(flags.GetInt("reconfig-cooldown", 2000));
    config.dynamic.controller.leave_drain = Millis(flags.GetInt("leave-drain", 500));
    config.dynamic.controller.chain_replicas = config.chain_replicas;
    config.dynamic.adaptive_detector = !flags.Has("static-detector");
    config.dynamic.rtt_multiplier = flags.GetDouble("rtt-multiplier", 3.0);
  }

  if (flags.Has("backup")) {
    if (config.protocol != Protocol::kSaturn) {
      std::fprintf(stderr, "--backup requires --protocol=saturn\n");
      *exit_code = 2;
      return false;
    }
    setup->backup = true;
  }
  if (flags.Has("stop-clients")) {
    setup->stop_clients = Millis(flags.GetInt("stop-clients", 0));
  }

  if (flags.Has("trace-out") || flags.Has("trace-label")) {
    if (flags.GetInt("seeds", 1) > 1) {
      std::fprintf(stderr, "--trace-out/--trace-label are single-run only\n");
      *exit_code = 2;
      return false;
    }
    config.trace.enabled = true;
  }
  if (flags.Has("trace-ring")) {
    config.trace.ring_capacity = static_cast<size_t>(flags.GetInt("trace-ring", 1 << 16));
  }
  config.trace.attribution = flags.Has("attribution");
  setup->capture_metrics = flags.Has("metrics-out");
  if (flags.Has("timeseries-out")) {
    long window_ms = flags.GetInt("timeseries-window", 100);
    if (window_ms <= 0) {
      std::fprintf(stderr, "--timeseries-window must be positive\n");
      *exit_code = 2;
      return false;
    }
    config.timeseries_window = Millis(window_ms);
    setup->capture_timeseries = true;
  } else if (flags.Has("timeseries-window")) {
    std::fprintf(stderr, "--timeseries-window needs --timeseries-out\n");
    *exit_code = 2;
    return false;
  }

  if (flags.Get("backend", "sim") == "realtime") {
    // The wall-clock backend is incompatible with the deterministic-sim-only
    // planes: latency trajectories and tracing refuse a lane router, the
    // backup tree deploys after lane binding closes, and a seed sweep's
    // merged output would not be reproducible anyway.
    if (flags.GetInt("seeds", 1) > 1 || config.trace.enabled || config.trace.attribution ||
        setup->capture_timeseries || !setup->drift.Empty() || setup->backup ||
        flags.Has("dynamic")) {
      std::fprintf(stderr,
                   "--backend=realtime is single-run only and cannot combine with "
                   "--drift-plan/--join/--leave/--dynamic, --trace-*, --attribution, "
                   "--timeseries-out, or --backup\n");
      *exit_code = 2;
      return false;
    }
    config.backend = ExecBackend::kRealtime;
    config.realtime.workers = static_cast<unsigned>(flags.GetInt("workers", 2));
    // Wall-clock worker-utilization series (50 ms windows): realtime's
    // telemetry counterpart to --timeseries-out, printed after the run.
    config.realtime.utilization_sample_ns = 50ull * 1000 * 1000;
  } else if (flags.Get("backend", "sim") != "sim") {
    std::fprintf(stderr, "--backend must be sim or realtime\n");
    *exit_code = 2;
    return false;
  }
  return true;
}

// Builds the cluster for one run of `setup` (the backup tree, fault plan and
// client stop are applied; nothing is printed — both modes share this).
std::unique_ptr<Cluster> BuildCluster(const SimSetup& setup) {
  // Closed-loop clients need the materialized key lists (their op generator
  // enumerates local/remote keys); a pure open-loop run can use the
  // procedural keyspace, whose memory is O(dcs^2) however many keys exist.
  bool procedural = setup.config.open_loop.sessions > 0 && setup.clients == 0;
  ReplicaMap replicas =
      procedural
          ? ReplicaMap::Procedural(setup.keyspace, setup.config.dc_sites,
                                   setup.config.latencies)
          : ReplicaMap::Generate(setup.keyspace, setup.config.dc_sites,
                                 setup.config.latencies);
  auto cluster = std::make_unique<Cluster>(setup.config, std::move(replicas),
                                           UniformClientHomes(setup.dcs, setup.clients),
                                           SyntheticGenerators(setup.workload));
  if (!setup.plan.Empty()) {
    cluster->InstallFaultPlan(setup.plan);
  }
  if (!setup.drift.Empty()) {
    cluster->InstallDriftPlan(setup.drift);
  }
  if (setup.backup) {
    // A star rooted away from the primary hub: survives whatever killed it.
    SiteId hub = setup.config.dc_sites[0] != setup.config.star_hub
                     ? setup.config.dc_sites[0]
                     : setup.config.dc_sites[1];
    cluster->metadata_service()->DeployTree(1, StarTopology(setup.config.dc_sites, hub));
  }
  if (setup.stop_clients != 0) {
    cluster->StopClientsAt(setup.stop_clients);
  }
  return cluster;
}

// Writes the time-series JSON, splicing the attribution profile (when one was
// collected) in as a top-level "attribution" object. Both inputs are plain
// data merged in seed order, so the file bytes are jobs-independent.
void WriteTimeSeries(const std::string& path, const obs::TimeSeries& series,
                     const obs::AttributionProfiler::Snapshot* attribution) {
  std::string json = series.ToJson();
  if (attribution != nullptr) {
    size_t pos = json.rfind('}');
    std::string attr = ",\n  \"attribution\": ";
    attribution->AppendJson(&attr);
    attr += "\n";
    json.insert(pos, attr);
  }
  std::ofstream out(path);
  out << json;
  std::printf("\nwrote time series to %s (%zu windows)\n", path.c_str(),
              series.windows.size());
}

int Run(const Flags& flags, const SimSetup& setup) {
  const ClusterConfig& config = setup.config;
  const KeyspaceConfig& keyspace = setup.keyspace;
  const SyntheticOpGenerator::Config& workload = setup.workload;
  const uint32_t dcs = setup.dcs;
  const uint32_t clients = setup.clients;
  const FaultPlan& plan = setup.plan;

  std::unique_ptr<Cluster> cluster_ptr = BuildCluster(setup);
  Cluster& cluster = *cluster_ptr;
  if (setup.backup) {
    SiteId hub = config.dc_sites[0] != config.star_hub ? config.dc_sites[0]
                                                       : config.dc_sites[1];
    std::printf("backup tree (epoch 1): star hub %s\n", Ec2RegionName(hub));
  }

  std::printf("protocol=%s dcs=%u pattern=%s degree=%u keys=%llu writes=%.2f "
              "remote-reads=%.2f clients=%u seed=%llu\n",
              ProtocolName(config.protocol), dcs, CorrelationPatternName(keyspace.pattern),
              keyspace.replication_degree,
              static_cast<unsigned long long>(keyspace.num_keys), workload.write_fraction,
              workload.remote_read_fraction, clients,
              static_cast<unsigned long long>(config.seed));
  if (config.protocol == Protocol::kSaturn) {
    std::printf("tree: %s\n", cluster.tree().ToString().c_str());
  }
  if (!plan.Empty()) {
    std::printf("fault plan: %s\n", plan.ToString().c_str());
  }
  if (!setup.drift.Empty()) {
    std::printf("drift plan: %s\n", setup.drift.ToString().c_str());
  }
  if (config.open_loop.sessions > 0) {
    std::printf("open-loop: sessions=%llu arrival-rate=%.0f/s/DC zipf=%.2f "
                "max-queue=%u edges=%u plan=%s\n",
                static_cast<unsigned long long>(config.open_loop.sessions),
                config.open_loop.arrival_rate, config.open_loop.zipf_theta,
                config.open_loop.max_queue, config.open_loop.edges_per_node,
                config.open_loop.plan.ToString().c_str());
  }

  ExperimentResult result = cluster.Run(setup.warmup, setup.measure);

  std::printf("\nthroughput          %10.0f ops/s\n", result.throughput_ops);
  std::printf("op latency (mean)   %10.2f ms\n", result.mean_op_latency_ms);
  std::printf("visibility mean     %10.1f ms\n", result.mean_visibility_ms);
  std::printf("visibility p90/p99  %10.1f / %.1f ms\n", result.p90_visibility_ms,
              result.p99_visibility_ms);
  std::printf("remote updates      %10llu\n",
              static_cast<unsigned long long>(result.remote_updates));
  if (result.mean_attach_ms > 0) {
    std::printf("attach mean         %10.1f ms\n", result.mean_attach_ms);
  }

  if (!cluster.session_muxes().empty()) {
    // Every figure here is read back out of the unified metrics registry —
    // the same names --metrics-out and --timeseries-out export, so scripted
    // consumers need not scrape this stdout block.
    const obs::MetricsSnapshot snap = cluster.metrics_registry().Snapshot();
    std::printf("\nopen-loop load:\n");
    std::printf("  arrivals %lld, completed %lld, queued %lld, shed %lld, "
                "migrations %lld\n",
                static_cast<long long>(snap.Scalar("workload.arrivals")),
                static_cast<long long>(snap.Scalar("workload.ops_completed")),
                static_cast<long long>(snap.Scalar("workload.queued")),
                static_cast<long long>(snap.Scalar("workload.shed")),
                static_cast<long long>(snap.Scalar("workload.migrations")));
    std::printf("  residual backlog %lld, max queue depth %lld\n",
                static_cast<long long>(snap.Scalar("workload.backlog")),
                static_cast<long long>(snap.Scalar("workload.max_queue_depth")));
    LatencyHistogram queue_wait;
    for (DcId dc = 0; dc < dcs; ++dc) {
      const LatencyHistogram* h =
          snap.Histogram("workload.dc" + std::to_string(dc) + ".queue_wait");
      if (h != nullptr) {
        queue_wait.Merge(*h);
      }
    }
    if (queue_wait.count() > 0) {
      std::printf("  queue wait mean %.2f ms, p99 %.2f ms over %llu dequeues\n",
                  queue_wait.MeanMs(), queue_wait.PercentileMs(0.99),
                  static_cast<unsigned long long>(queue_wait.count()));
    }
  }

  if (cluster.scheduler() != nullptr &&
      !cluster.scheduler()->utilization_series().empty()) {
    const auto& series = cluster.scheduler()->utilization_series();
    size_t workers = series.front().busy_fraction.size();
    std::printf("\nrealtime worker utilization (%zu samples, 50 ms windows):\n",
                series.size());
    for (size_t w = 0; w < workers; ++w) {
      double mean = 0, peak = 0;
      for (const auto& s : series) {
        mean += s.busy_fraction[w];
        peak = std::max(peak, s.busy_fraction[w]);
      }
      mean /= static_cast<double>(series.size());
      std::printf("  worker %zu: mean %.0f%%, peak %.0f%%\n", w, mean * 100.0,
                  peak * 100.0);
    }
  }

  if (cluster.fault_injector() != nullptr) {
    // Everything printed here is read back out of the unified metrics
    // registry — the registry getters resolve the same live counters the
    // owners maintain, so this block is byte-identical to reading them
    // directly.
    const obs::MetricsSnapshot snap = cluster.metrics_registry().Snapshot();
    std::printf("\ndegraded-mode metrics:\n");
    std::printf("messages dropped    %10llu\n",
                static_cast<unsigned long long>(snap.Scalar("net.messages_dropped")));
    for (DcId dc = 0; dc < dcs; ++dc) {
      std::string prefix = "dc" + std::to_string(dc) + ".";
      std::printf("%4s fallback entries/exits %u/%u, timestamp-mode time %.1f ms%s\n",
                  Ec2RegionName(config.dc_sites[dc]),
                  static_cast<unsigned>(snap.Scalar(prefix + "fallback_entries")),
                  static_cast<unsigned>(snap.Scalar(prefix + "fallback_exits")),
                  static_cast<double>(snap.Scalar(prefix + "ts_mode_time_us")) / Millis(1),
                  snap.Scalar(prefix + "in_timestamp_mode") != 0 ? " (still degraded)"
                                                                 : "");
    }
    const LatencyHistogram* failover = snap.Histogram("failover_latency");
    if (failover != nullptr && failover->count() > 0) {
      std::printf("failover latency    %10.1f ms mean over %llu failovers\n",
                  failover->MeanMs(),
                  static_cast<unsigned long long>(failover->count()));
    }
    std::printf("fault trace:\n");
    for (const auto& [at, desc] : cluster.fault_injector()->log()) {
      std::printf("  [%7.1f ms] %s\n", static_cast<double>(at) / Millis(1), desc.c_str());
    }
  }

  if (cluster.reconfig_controller() != nullptr) {
    const ReconfigController* ctl = cluster.reconfig_controller();
    const obs::MetricsSnapshot snap = cluster.metrics_registry().Snapshot();
    std::printf("\ndynamic topology:\n");
    std::printf("probe samples       %10llu\n",
                static_cast<unsigned long long>(cluster.topology_monitor()->samples()));
    std::printf("controller evals    %10llu (reconfigs %llu, joins %llu, leaves %llu, "
                "rejected solves %llu)\n",
                static_cast<unsigned long long>(ctl->evals()),
                static_cast<unsigned long long>(ctl->reconfigs()),
                static_cast<unsigned long long>(ctl->joins()),
                static_cast<unsigned long long>(ctl->leaves()),
                static_cast<unsigned long long>(ctl->rejected_solves()));
    std::printf("mismatch objective  %10.3g measured vs %.3g baseline\n",
                ctl->last_measured_mismatch(), ctl->baseline_mismatch());
    std::printf("final epoch %u, active {", ctl->epoch());
    bool first = true;
    for (DcId dc : ctl->active()) {
      std::printf("%s%s", first ? "" : " ", Ec2RegionName(config.dc_sites[dc]));
      first = false;
    }
    std::printf("}%s\n", ctl->busy() ? " (operation still in flight)" : "");
    const LatencyHistogram* reconfig = snap.Histogram("reconfig_latency");
    if (reconfig != nullptr && reconfig->count() > 0) {
      std::printf("reconfig latency    %10.1f ms mean over %llu operations\n",
                  reconfig->MeanMs(), static_cast<unsigned long long>(reconfig->count()));
    }
    const LatencyHistogram* during = snap.Histogram("reconfig_visibility");
    if (during != nullptr && during->count() > 0) {
      std::printf("visibility during reconfig: mean %.1f ms, p99 %.1f ms (%llu samples)\n",
                  during->MeanMs(), during->PercentileMs(0.99),
                  static_cast<unsigned long long>(during->count()));
    }
  }

  std::printf("\nper-pair visibility means (ms, origin row -> destination column):\n     ");
  for (DcId to = 0; to < dcs; ++to) {
    std::printf(" %7s", Ec2RegionName(config.dc_sites[to]));
  }
  std::printf("\n");
  for (DcId from = 0; from < dcs; ++from) {
    std::printf("%4s ", Ec2RegionName(config.dc_sites[from]));
    for (DcId to = 0; to < dcs; ++to) {
      const LatencyHistogram& hist = cluster.metrics().Visibility(from, to);
      if (from == to || hist.count() == 0) {
        std::printf(" %7s", "-");
      } else {
        std::printf(" %7.1f", hist.MeanMs());
      }
    }
    std::printf("\n");
  }

  if (flags.Has("csv")) {
    std::ofstream csv(flags.Get("csv", ""));
    csv << "kind,origin,destination,visibility_ms,cdf\n";
    for (DcId from = 0; from < dcs; ++from) {
      for (DcId to = 0; to < dcs; ++to) {
        if (from == to) {
          continue;
        }
        for (auto [ms, frac] : cluster.metrics().Visibility(from, to).CdfPointsMs()) {
          csv << "visibility," << Ec2RegionName(config.dc_sites[from]) << ','
              << Ec2RegionName(config.dc_sites[to]) << ',' << ms << ',' << frac << '\n';
        }
      }
    }
    if (cluster.fault_injector() != nullptr) {
      // Fault events as rows so plots can overlay the fault timeline
      // (descriptions contain no commas).
      for (const auto& [at, desc] : cluster.fault_injector()->log()) {
        csv << "fault," << desc << ",," << static_cast<double>(at) / Millis(1) << ",\n";
      }
    }
    std::printf("\nwrote CDFs to %s\n", flags.Get("csv", "").c_str());
  }

  if (flags.Has("trace-out")) {
    std::ofstream out(flags.Get("trace-out", ""));
    out << cluster.trace()->ExportJson();
    std::printf("\nwrote trace to %s (%llu events recorded, %llu dropped)\n",
                flags.Get("trace-out", "").c_str(),
                static_cast<unsigned long long>(cluster.trace()->events_recorded()),
                static_cast<unsigned long long>(cluster.trace()->events_dropped()));
  }
  if (flags.Has("trace-label")) {
    // Bare --trace-label parses as "1"; treat anything below 2 as the default
    // count of 5.
    long n = flags.GetInt("trace-label", 5);
    if (n <= 1) {
      n = 5;
    }
    std::printf("\n%s", cluster.trace()->JourneyReport(static_cast<size_t>(n)).c_str());
  }
  if (flags.Has("metrics-out")) {
    std::ofstream out(flags.Get("metrics-out", ""));
    out << cluster.metrics_registry().Snapshot().ToJson();
    std::printf("\nwrote metrics to %s\n", flags.Get("metrics-out", "").c_str());
  }
  if (cluster.attribution() != nullptr) {
    std::printf("\n%s", cluster.attribution()->TakeSnapshot().Report().c_str());
  }
  if (setup.capture_timeseries) {
    obs::AttributionProfiler::Snapshot attr;
    if (cluster.attribution() != nullptr) {
      attr = cluster.attribution()->TakeSnapshot();
    }
    WriteTimeSeries(flags.Get("timeseries-out", ""), cluster.timeseries()->series(),
                    cluster.attribution() != nullptr ? &attr : nullptr);
  }

  if (cluster.oracle() != nullptr) {
    if (cluster.fault_injector() != nullptr) {
      auto missing = cluster.oracle()->MissingReplicas();
      if (!missing.empty()) {
        std::printf("\nreplication liveness: %zu updates missing replicas, first: %s\n",
                    missing.size(), missing.front().c_str());
        return 1;
      }
      std::printf("\nreplication liveness: complete\n");
    }
    if (cluster.oracle()->Clean()) {
      std::printf("\ncausality oracle: clean\n");
    } else {
      std::printf("\ncausality oracle: %zu VIOLATIONS, first: %s\n",
                  cluster.oracle()->violations().size(),
                  cluster.oracle()->violations().front().c_str());
      return 1;
    }
  }
  return 0;
}

// --- Seed sweep mode -------------------------------------------------------

// Plain data extracted from one seed's cluster on the worker; printing and
// CSV writing happen on the main thread afterwards, in seed order, so the
// output is identical whatever --jobs is.
struct SeedRun {
  uint64_t seed = 0;
  ExperimentResult result;
  LatencyHistogram all_visibility;
  std::vector<LatencyHistogram> pair_visibility;  // dcs*dcs, row-major
  obs::MetricsSnapshot metrics;  // empty unless --metrics-out
  obs::TimeSeries timeseries;    // empty unless --timeseries-out
  obs::AttributionProfiler::Snapshot attribution;  // empty unless --attribution
  bool oracle_clean = true;
  std::string first_violation;
};

SeedRun RunOneSeed(const SimSetup& base, uint64_t seed) {
  SimSetup setup = base;
  setup.config.seed = seed;
  std::unique_ptr<Cluster> cluster = BuildCluster(setup);
  SeedRun run;
  run.seed = seed;
  run.result = cluster->Run(setup.warmup, setup.measure);
  if (setup.capture_metrics) {
    // Snapshot before the destructive Take* accessors empty the histograms.
    run.metrics = cluster->metrics_registry().Snapshot();
  }
  if (setup.capture_timeseries) {
    run.timeseries = cluster->timeseries()->TakeSeries();
  }
  if (cluster->attribution() != nullptr) {
    run.attribution = cluster->attribution()->TakeSnapshot();
  }
  run.all_visibility = cluster->metrics().TakeAllVisibility();
  run.pair_visibility.reserve(static_cast<size_t>(setup.dcs) * setup.dcs);
  for (DcId from = 0; from < setup.dcs; ++from) {
    for (DcId to = 0; to < setup.dcs; ++to) {
      run.pair_visibility.push_back(from == to ? LatencyHistogram()
                                               : cluster->metrics().TakeVisibility(from, to));
    }
  }
  if (cluster->oracle() != nullptr && !cluster->oracle()->Clean()) {
    run.oracle_clean = false;
    run.first_violation = cluster->oracle()->violations().front();
  }
  return run;
}

int RunSeedSweep(const Flags& flags, const SimSetup& setup, uint64_t num_seeds) {
  const uint64_t base_seed = setup.config.seed;
  std::vector<uint64_t> seeds;
  for (uint64_t i = 0; i < num_seeds; ++i) {
    seeds.push_back(base_seed + i);
  }
  const int jobs = ResolveJobs(static_cast<int>(flags.GetInt("jobs", 0)));

  std::printf("protocol=%s dcs=%u pattern=%s degree=%u clients=%u "
              "seeds=%llu..%llu jobs=%d\n",
              ProtocolName(setup.config.protocol), setup.dcs,
              CorrelationPatternName(setup.keyspace.pattern),
              setup.keyspace.replication_degree, setup.clients,
              static_cast<unsigned long long>(seeds.front()),
              static_cast<unsigned long long>(seeds.back()), jobs);

  std::vector<SeedRun> runs = ParallelSweep(
      seeds, jobs, [&setup](uint64_t seed) { return RunOneSeed(setup, seed); });

  std::printf("\n%6s  %10s  %9s  %9s  %9s  %9s\n", "seed", "tput", "op (ms)",
              "vis mean", "vis p90", "vis p99");
  LatencyHistogram merged;
  int violations = 0;
  for (const SeedRun& run : runs) {
    std::printf("%6llu  %10.0f  %9.2f  %9.1f  %9.1f  %9.1f\n",
                static_cast<unsigned long long>(run.seed), run.result.throughput_ops,
                run.result.mean_op_latency_ms, run.result.mean_visibility_ms,
                run.result.p90_visibility_ms, run.result.p99_visibility_ms);
    merged.Merge(run.all_visibility);
    if (!run.oracle_clean) {
      ++violations;
      std::printf("        causality VIOLATION: %s\n", run.first_violation.c_str());
    }
  }

  std::printf("\nmerged visibility over %llu seeds (%llu samples):\n",
              static_cast<unsigned long long>(num_seeds),
              static_cast<unsigned long long>(merged.count()));
  std::printf("  mean %.1f ms, p50 %.1f, p90 %.1f, p99 %.1f\n", merged.MeanMs(),
              merged.PercentileMs(0.50), merged.PercentileMs(0.90),
              merged.PercentileMs(0.99));

  if (flags.Has("csv")) {
    // Per-pair histograms merged across all seeds, dumped in the same format
    // as single-run mode. Merge order is seed order: byte-identical output
    // for every --jobs value.
    std::ofstream csv(flags.Get("csv", ""));
    csv << "kind,origin,destination,visibility_ms,cdf\n";
    for (DcId from = 0; from < setup.dcs; ++from) {
      for (DcId to = 0; to < setup.dcs; ++to) {
        if (from == to) {
          continue;
        }
        LatencyHistogram pair_merged;
        for (const SeedRun& run : runs) {
          pair_merged.Merge(run.pair_visibility[from * setup.dcs + to]);
        }
        for (auto [ms, frac] : pair_merged.CdfPointsMs()) {
          csv << "visibility," << Ec2RegionName(setup.config.dc_sites[from]) << ','
              << Ec2RegionName(setup.config.dc_sites[to]) << ',' << ms << ',' << frac
              << '\n';
        }
      }
    }
    std::printf("\nwrote merged CDFs to %s\n", flags.Get("csv", "").c_str());
  }

  if (flags.Has("metrics-out")) {
    // Merge order is seed order: byte-identical output for every --jobs
    // value, same guarantee as the CSV path above.
    obs::MetricsSnapshot merged_metrics;
    for (const SeedRun& run : runs) {
      merged_metrics.Merge(run.metrics);
    }
    std::ofstream out(flags.Get("metrics-out", ""));
    out << merged_metrics.ToJson();
    std::printf("\nwrote merged metrics to %s\n", flags.Get("metrics-out", "").c_str());
  }

  const bool attribution = setup.config.trace.attribution;
  obs::AttributionProfiler::Snapshot merged_attr;
  if (attribution) {
    // Seed-order merge, like every sweep output above.
    for (const SeedRun& run : runs) {
      merged_attr.Merge(run.attribution);
    }
    std::printf("\n%s", merged_attr.Report().c_str());
  }
  if (setup.capture_timeseries) {
    obs::TimeSeries merged_series;
    for (const SeedRun& run : runs) {
      merged_series.Merge(run.timeseries);
    }
    WriteTimeSeries(flags.Get("timeseries-out", ""), merged_series,
                    attribution ? &merged_attr : nullptr);
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace saturn

int main(int argc, char** argv) {
  saturn::Flags flags;
  if (!flags.Parse(argc, argv) || flags.Has("help")) {
    saturn::Usage();
    return flags.Has("help") ? 0 : 2;
  }
  saturn::SimSetup setup;
  int exit_code = 0;
  if (!saturn::BuildSetup(flags, &setup, &exit_code)) {
    return exit_code;
  }
  long seeds = flags.GetInt("seeds", 1);
  if (seeds > 1) {
    return saturn::RunSeedSweep(flags, setup, static_cast<uint64_t>(seeds));
  }
  return saturn::Run(flags, setup);
}
