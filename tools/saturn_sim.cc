// saturn_sim — command-line experiment driver.
//
// Runs one deployment of any supported protocol on the simulated EC2 network
// and prints throughput, visibility statistics and (optionally) per-pair CDFs
// as CSV for plotting. Everything the figure benches do, parameterized.
//
// Examples:
//   saturn_sim --protocol=saturn --dcs=7 --seconds=3
//   saturn_sim --protocol=gentlerain --pattern=full --writes=0.25
//   saturn_sim --protocol=saturn --tree=star --hub=3 --csv=/tmp/vis.csv
//   saturn_sim --protocol=cops --prune=0 --degree=2 --oracle
//   saturn_sim --protocol=saturn --backup --oracle --fault-plan="1500:cut:3-5:drop;2100:heal:3-5"
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "src/runtime/cluster.h"

namespace saturn {
namespace {

struct Flags {
  std::map<std::string, std::string> values;

  bool Parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--", 2) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg);
        return false;
      }
      const char* eq = std::strchr(arg, '=');
      if (eq == nullptr) {
        values[arg + 2] = "1";  // boolean flag
      } else {
        values[std::string(arg + 2, eq - arg - 2)] = eq + 1;
      }
    }
    return true;
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atof(it->second.c_str());
  }
  long GetInt(const std::string& key, long fallback) const {
    auto it = values.find(key);
    return it == values.end() ? fallback : std::atol(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values.count(key) != 0; }
};

void Usage() {
  std::printf(
      "saturn_sim — run one simulated geo-replicated deployment\n\n"
      "  --protocol=eventual|saturn|saturn-p2p|gentlerain|cure|cops  (saturn)\n"
      "  --dcs=N             datacenters, 2..7 Table-1 regions          (7)\n"
      "  --pattern=exponential|proportional|uniform|full               (exponential)\n"
      "  --degree=N          replicas per key                           (3)\n"
      "  --keys=N            keyspace size                              (10000)\n"
      "  --writes=F          write fraction                             (0.1)\n"
      "  --remote-reads=F    remote-read fraction of reads              (0)\n"
      "  --zipf=F            key popularity skew theta                  (0)\n"
      "  --value=N           value size in bytes                        (2)\n"
      "  --clients=N         clients per datacenter                     (32)\n"
      "  --gears=N           storage servers per datacenter             (4)\n"
      "  --seconds=N         measured simulated seconds                 (3)\n"
      "  --warmup=N          warm-up simulated seconds                  (1)\n"
      "  --tree=generated|star  Saturn tree configuration               (generated)\n"
      "  --hub=SITE          star hub region index (0=NV..6=S)          (3=Ireland)\n"
      "  --chain=N           chain replicas per serializer              (1)\n"
      "  --prune=0|1         COPS context pruning                       (1)\n"
      "  --seed=N            RNG seed                                   (42)\n"
      "  --oracle            enable the causality oracle\n"
      "  --csv=PATH          dump per-pair visibility CDFs (and fault events) as CSV\n"
      "  --fault-plan=SPEC   inject faults; `;`-separated timed events:\n"
      "                        <ms>:cut:<a>-<b>[:drop]   cut a site link (lossy w/ drop)\n"
      "                        <ms>:heal:<a>-<b>         heal it\n"
      "                        <ms>:lat:<a>-<b>:<ms>     extra one-way latency\n"
      "                        <ms>:unlat:<a>-<b>        clear the extra latency\n"
      "                        <ms>:crash:<dc>           crash a datacenter\n"
      "                        <ms>:recover:<dc>         recover it\n"
      "                        <ms>:killtree:<epoch>     kill an epoch's serializers\n"
      "                        <ms>:killchain:<e>:<r>    kill one chain replica\n"
      "  --backup            saturn: pre-deploy a backup star tree as epoch 1\n"
      "  --stop-clients=MS   stop all clients at MS (quiescent recovery tail)\n");
}

int Run(const Flags& flags) {
  static const std::map<std::string, Protocol> kProtocols = {
      {"eventual", Protocol::kEventual},     {"saturn", Protocol::kSaturn},
      {"saturn-p2p", Protocol::kSaturnTimestamp}, {"gentlerain", Protocol::kGentleRain},
      {"cure", Protocol::kCure},             {"cops", Protocol::kCops},
  };
  static const std::map<std::string, CorrelationPattern> kPatterns = {
      {"exponential", CorrelationPattern::kExponential},
      {"proportional", CorrelationPattern::kProportional},
      {"uniform", CorrelationPattern::kUniform},
      {"full", CorrelationPattern::kFull},
  };

  std::string protocol_name = flags.Get("protocol", "saturn");
  auto protocol_it = kProtocols.find(protocol_name);
  if (protocol_it == kProtocols.end()) {
    std::fprintf(stderr, "unknown protocol: %s\n", protocol_name.c_str());
    return 2;
  }
  auto pattern_it = kPatterns.find(flags.Get("pattern", "exponential"));
  if (pattern_it == kPatterns.end()) {
    std::fprintf(stderr, "unknown pattern: %s\n", flags.Get("pattern", "").c_str());
    return 2;
  }

  uint32_t dcs = static_cast<uint32_t>(flags.GetInt("dcs", 7));
  if (dcs < 2 || dcs > kNumEc2Regions) {
    std::fprintf(stderr, "--dcs must be 2..%u\n", kNumEc2Regions);
    return 2;
  }

  ClusterConfig config;
  config.protocol = protocol_it->second;
  config.dc_sites = Ec2Sites(dcs);
  config.latencies = Ec2Latencies();
  config.dc.num_gears = static_cast<uint32_t>(flags.GetInt("gears", 4));
  config.tree_kind = flags.Get("tree", "generated") == "star" ? SaturnTreeKind::kStar
                                                              : SaturnTreeKind::kGenerated;
  config.star_hub = static_cast<SiteId>(flags.GetInt("hub", kIreland));
  config.chain_replicas = static_cast<uint32_t>(flags.GetInt("chain", 1));
  config.cops_prune = flags.GetInt("prune", 1) != 0;
  config.enable_oracle = flags.Has("oracle");
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  KeyspaceConfig keyspace;
  keyspace.num_keys = static_cast<uint64_t>(flags.GetInt("keys", 10000));
  keyspace.pattern = pattern_it->second;
  keyspace.replication_degree = static_cast<uint32_t>(flags.GetInt("degree", 3));
  ReplicaMap replicas = ReplicaMap::Generate(keyspace, config.dc_sites, config.latencies);

  SyntheticOpGenerator::Config workload;
  workload.write_fraction = flags.GetDouble("writes", 0.1);
  workload.remote_read_fraction = flags.GetDouble("remote-reads", 0.0);
  workload.zipf_theta = flags.GetDouble("zipf", 0.0);
  workload.value_size = static_cast<uint32_t>(flags.GetInt("value", 2));

  uint32_t clients = static_cast<uint32_t>(flags.GetInt("clients", 32));
  Cluster cluster(config, std::move(replicas), UniformClientHomes(dcs, clients),
                  SyntheticGenerators(workload));

  FaultPlan plan;
  if (flags.Has("fault-plan")) {
    std::string error;
    if (!ParseFaultPlan(flags.Get("fault-plan", ""), &plan, &error)) {
      std::fprintf(stderr, "bad --fault-plan: %s\n", error.c_str());
      return 2;
    }
    cluster.InstallFaultPlan(plan);
  }
  if (flags.Has("backup")) {
    if (cluster.metadata_service() == nullptr) {
      std::fprintf(stderr, "--backup requires --protocol=saturn\n");
      return 2;
    }
    // A star rooted away from the primary hub: survives whatever killed it.
    SiteId hub = config.dc_sites[0] != config.star_hub ? config.dc_sites[0]
                                                       : config.dc_sites[1];
    cluster.metadata_service()->DeployTree(1, StarTopology(config.dc_sites, hub));
    std::printf("backup tree (epoch 1): star hub %s\n", Ec2RegionName(hub));
  }
  if (flags.Has("stop-clients")) {
    cluster.StopClientsAt(Millis(flags.GetInt("stop-clients", 0)));
  }

  std::printf("protocol=%s dcs=%u pattern=%s degree=%u keys=%llu writes=%.2f "
              "remote-reads=%.2f clients=%u seed=%llu\n",
              ProtocolName(config.protocol), dcs, CorrelationPatternName(keyspace.pattern),
              keyspace.replication_degree,
              static_cast<unsigned long long>(keyspace.num_keys), workload.write_fraction,
              workload.remote_read_fraction, clients,
              static_cast<unsigned long long>(config.seed));
  if (config.protocol == Protocol::kSaturn) {
    std::printf("tree: %s\n", cluster.tree().ToString().c_str());
  }
  if (!plan.Empty()) {
    std::printf("fault plan: %s\n", plan.ToString().c_str());
  }

  ExperimentResult result = cluster.Run(Seconds(flags.GetInt("warmup", 1)),
                                        Seconds(flags.GetInt("seconds", 3)));

  std::printf("\nthroughput          %10.0f ops/s\n", result.throughput_ops);
  std::printf("op latency (mean)   %10.2f ms\n", result.mean_op_latency_ms);
  std::printf("visibility mean     %10.1f ms\n", result.mean_visibility_ms);
  std::printf("visibility p90/p99  %10.1f / %.1f ms\n", result.p90_visibility_ms,
              result.p99_visibility_ms);
  std::printf("remote updates      %10llu\n",
              static_cast<unsigned long long>(result.remote_updates));
  if (result.mean_attach_ms > 0) {
    std::printf("attach mean         %10.1f ms\n", result.mean_attach_ms);
  }

  if (cluster.fault_injector() != nullptr) {
    std::printf("\ndegraded-mode metrics:\n");
    std::printf("messages dropped    %10llu\n",
                static_cast<unsigned long long>(cluster.network().messages_dropped()));
    SimTime now = cluster.sim().Now();
    for (DcId dc = 0; dc < dcs; ++dc) {
      std::printf("%4s fallback entries/exits %u/%u, timestamp-mode time %.1f ms%s\n",
                  Ec2RegionName(config.dc_sites[dc]), cluster.metrics().FallbackEntries(dc),
                  cluster.metrics().FallbackExits(dc),
                  static_cast<double>(cluster.metrics().TimestampModeTime(dc, now)) /
                      Millis(1),
                  cluster.saturn_dc(dc) != nullptr &&
                          cluster.saturn_dc(dc)->in_timestamp_mode()
                      ? " (still degraded)"
                      : "");
    }
    if (cluster.metrics().FailoverLatency().count() > 0) {
      std::printf("failover latency    %10.1f ms mean over %llu failovers\n",
                  cluster.metrics().FailoverLatency().MeanMs(),
                  static_cast<unsigned long long>(cluster.metrics().FailoverLatency().count()));
    }
    std::printf("fault trace:\n");
    for (const auto& [at, desc] : cluster.fault_injector()->log()) {
      std::printf("  [%7.1f ms] %s\n", static_cast<double>(at) / Millis(1), desc.c_str());
    }
  }

  std::printf("\nper-pair visibility means (ms, origin row -> destination column):\n     ");
  for (DcId to = 0; to < dcs; ++to) {
    std::printf(" %7s", Ec2RegionName(config.dc_sites[to]));
  }
  std::printf("\n");
  for (DcId from = 0; from < dcs; ++from) {
    std::printf("%4s ", Ec2RegionName(config.dc_sites[from]));
    for (DcId to = 0; to < dcs; ++to) {
      const LatencyHistogram& hist = cluster.metrics().Visibility(from, to);
      if (from == to || hist.count() == 0) {
        std::printf(" %7s", "-");
      } else {
        std::printf(" %7.1f", hist.MeanMs());
      }
    }
    std::printf("\n");
  }

  if (flags.Has("csv")) {
    std::ofstream csv(flags.Get("csv", ""));
    csv << "kind,origin,destination,visibility_ms,cdf\n";
    for (DcId from = 0; from < dcs; ++from) {
      for (DcId to = 0; to < dcs; ++to) {
        if (from == to) {
          continue;
        }
        for (auto [ms, frac] : cluster.metrics().Visibility(from, to).CdfPointsMs()) {
          csv << "visibility," << Ec2RegionName(config.dc_sites[from]) << ','
              << Ec2RegionName(config.dc_sites[to]) << ',' << ms << ',' << frac << '\n';
        }
      }
    }
    if (cluster.fault_injector() != nullptr) {
      // Fault events as rows so plots can overlay the fault timeline
      // (descriptions contain no commas).
      for (const auto& [at, desc] : cluster.fault_injector()->log()) {
        csv << "fault," << desc << ",," << static_cast<double>(at) / Millis(1) << ",\n";
      }
    }
    std::printf("\nwrote CDFs to %s\n", flags.Get("csv", "").c_str());
  }

  if (cluster.oracle() != nullptr) {
    if (cluster.fault_injector() != nullptr) {
      auto missing = cluster.oracle()->MissingReplicas();
      if (!missing.empty()) {
        std::printf("\nreplication liveness: %zu updates missing replicas, first: %s\n",
                    missing.size(), missing.front().c_str());
        return 1;
      }
      std::printf("\nreplication liveness: complete\n");
    }
    if (cluster.oracle()->Clean()) {
      std::printf("\ncausality oracle: clean\n");
    } else {
      std::printf("\ncausality oracle: %zu VIOLATIONS, first: %s\n",
                  cluster.oracle()->violations().size(),
                  cluster.oracle()->violations().front().c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace saturn

int main(int argc, char** argv) {
  saturn::Flags flags;
  if (!flags.Parse(argc, argv) || flags.Has("help")) {
    saturn::Usage();
    return flags.Has("help") ? 0 : 2;
  }
  return saturn::Run(flags);
}
