#!/usr/bin/env python3
"""Compare two perf_sim BENCH_sim.json files and flag regressions.

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold PCT]
                        [--ignore-wallclock] [--ignore-allocs]
                        [--ignore-wire-bytes] [--ignore-rss] [--no-timing]
    tools/bench_diff.py BENCH_sim.json                 # self mode

Two-file mode compares per-workload events/sec (and throughput) of CANDIDATE
against BASELINE. Self mode reads a single committed BENCH_sim.json that
carries a "baseline" block (the pre-change numbers recorded when the file was
committed) and compares the current "workloads" block against it.

When both files carry a "suite_wall_clock" section (the parallel-sweep
measurement), the suite's parallel wall-clock is compared too. Wall-clock is
machine-sensitive, so --ignore-wallclock demotes a suite slowdown to
informational; the suite's serial-vs-parallel fingerprint check is a
*determinism* property, never a timing one, so it gates regardless of the
flag.

Allocation counts (allocs_per_event) gate like fingerprints: the simulator is
deterministic, so at the same scale a >10% allocs/event increase over the
baseline is a real regression on the message plane, not noise. --ignore-allocs
demotes it to informational (the escape hatch for a change that knowingly
trades allocations for something else). Baselines recorded before allocation
counting simply skip the check.

Wire volume (metadata_wire_bytes, total_wire_bytes) gates the same way: the
network's byte counters are deterministic, so at the same scale a >10% growth
over the baseline means the message plane fattened — an envelope grew, a batch
stopped coalescing, or the label codec stopped compressing.
--ignore-wire-bytes demotes it to informational (for a change that knowingly
spends wire bytes, e.g. a new protocol field). Baselines recorded before wire
accounting simply skip the check.

Peak RSS (peak_rss_kb) gates the same way: the allocation sequence is
deterministic, so at the same scale a >10% growth in a workload's recorded
high-water mark means something durably fattened — a table stopped being
pre-sized, the streaming graph materialized, the session slab grew. The
workloads run in a pinned order and RSS is process-monotone, so each row is
"the high-water mark as of this workload"; the mmusers row runs last and is
the million-user engine's bounded-memory gate. --ignore-rss demotes RSS
growth to informational (the escape hatch for a change that knowingly spends
resident memory, e.g. a bigger deliberate pre-size). Baselines recorded
before RSS tracking simply skip the check.

When both files carry a "trace_overhead" section (fig5_full run untraced and
traced at the same scale), the tracing cost is compared too. The candidate's
on-vs-off fingerprint flag always gates — the trace recorder must only
observe — while the overhead delta is a timing quantity and obeys
--no-timing.

When both files carry an "attribution_overhead" section (fig5_full run with
and without the visibility-attribution profiler at the same scale), the
profiler's cost is compared the same way as the trace recorder's: the
candidate's on-vs-off fingerprint flag always gates — attribution must only
observe — while the overhead delta is a timing quantity and obeys
--no-timing.

When both files carry a "realtime_scaling" section (the wall-clock backend's
ops/sec at 1/2/4 workers), the 4-worker speedup is compared too. Realtime
runs are inherently non-reproducible, so the whole section is a timing
quantity: the absolute >= 1.8x floor is enforced by perf_sim itself when the
machine has enough hardware threads, and this script only flags a speedup
collapse relative to the baseline (obeying --no-timing).

--no-timing disables the timing gates (events/sec, suite wall-clock, trace
overhead, realtime speedup) and keeps only the deterministic ones —
fingerprints and allocations. This is the mode the ctest allocation-budget check runs in,
where machine load must not flake the suite.

Exit status: 0 = no regression, 1 = events/sec regression beyond the
threshold (default 5%), a determinism-fingerprint mismatch, an allocs/event
regression beyond 10% (without --ignore-allocs), a peak-RSS growth beyond
10% (without --ignore-rss), or (without --ignore-wallclock) a suite
wall-clock regression; 2 = usage or parse error.
Fingerprints and allocation rates are only required to match when both runs
were made at the same scale (smoke vs full).
"""

import json
import sys

# Allocations are deterministic, so the slack only needs to absorb a genuinely
# different split of the same work (e.g. one extra rehash), not timing noise.
ALLOC_THRESHOLD_PCT = 10.0

# Wire bytes are deterministic too: the slack absorbs legitimate re-framing of
# the same traffic, not noise.
WIRE_BYTES_THRESHOLD_PCT = 10.0

# Tracing overhead is wall-clock based, so the gate is a generous absolute
# delta in percentage points over the baseline's overhead. The attribution
# profiler shares the contract and the budget.
TRACE_OVERHEAD_THRESHOLD_PCT = 10.0
ATTRIBUTION_OVERHEAD_THRESHOLD_PCT = 10.0

# Peak RSS follows the deterministic allocation sequence; the slack absorbs
# allocator/kernel page-accounting jitter, not a genuinely bigger live set.
RSS_THRESHOLD_PCT = 10.0


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def by_name(workloads):
    return {w["name"]: w for w in workloads}


def compare_allocs(base, cand, same_scale, ignore_allocs):
    """Allocation-rate column for one workload; returns (text, regressed)."""
    b_alloc = base.get("allocs_per_event")
    c_alloc = cand.get("allocs_per_event")
    if b_alloc is None or c_alloc is None:
        return "", False  # baseline predates allocation counting
    if not same_scale:
        return "  allocs skipped (different scale)", False
    b_alloc = float(b_alloc)
    c_alloc = float(c_alloc)
    text = f"  allocs/ev {b_alloc:.4f} -> {c_alloc:.4f}"
    # Small absolute epsilon so a zero-allocation baseline tolerates counter
    # jitter-free but formula-rounded values.
    if c_alloc > b_alloc * (1.0 + ALLOC_THRESHOLD_PCT / 100.0) + 1e-4:
        if ignore_allocs:
            return text + " (worse, ignored by --ignore-allocs)", False
        return text + " << ALLOC REGRESSION", True
    return text, False


def compare_wire_bytes(base, cand, same_scale, ignore_wire_bytes):
    """Wire-volume column for one workload; returns (text, regressed)."""
    texts = []
    regressed = False
    for key, label in (("metadata_wire_bytes", "meta wire"),
                       ("total_wire_bytes", "total wire")):
        b = base.get(key)
        c = cand.get(key)
        if b is None or c is None:
            continue  # baseline predates wire accounting
        if not same_scale:
            return "  wire bytes skipped (different scale)", False
        b = int(b)
        c = int(c)
        text = f"  {label} {b} -> {c}"
        if c > b * (1.0 + WIRE_BYTES_THRESHOLD_PCT / 100.0):
            if ignore_wire_bytes:
                text += " (worse, ignored by --ignore-wire-bytes)"
            else:
                text += " << WIRE REGRESSION"
                regressed = True
        texts.append(text)
    return "".join(texts), regressed


def compare_rss(base, cand, same_scale, ignore_rss):
    """Peak-RSS column for one workload; returns (text, regressed)."""
    b_rss = base.get("peak_rss_kb")
    c_rss = cand.get("peak_rss_kb")
    if b_rss is None or c_rss is None:
        return "", False  # baseline predates RSS tracking
    if not same_scale:
        return "  rss skipped (different scale)", False
    b_rss = int(b_rss)
    c_rss = int(c_rss)
    text = f"  rss {b_rss} -> {c_rss} kB"
    if b_rss > 0 and c_rss > b_rss * (1.0 + RSS_THRESHOLD_PCT / 100.0):
        if ignore_rss:
            return text + " (worse, ignored by --ignore-rss)", False
        return text + " << RSS REGRESSION", True
    return text, False


def compare(base, cand, threshold_pct, same_scale, ignore_allocs, no_timing,
            ignore_wire_bytes=False, ignore_rss=False):
    base_by = by_name(base)
    cand_by = by_name(cand)
    regressed = False
    print(f"{'workload':<12} {'base ev/s':>14} {'cand ev/s':>14} {'delta':>9}  fingerprint")
    for name, b in base_by.items():
        c = cand_by.get(name)
        if c is None:
            print(f"{name:<12} {'':>14} {'':>14} {'MISSING':>9}")
            regressed = True
            continue
        b_eps = float(b["events_per_sec"])
        c_eps = float(c["events_per_sec"])
        delta = (c_eps - b_eps) / b_eps * 100.0 if b_eps > 0 else 0.0
        if same_scale:
            same = int(b["executed_events"]) == int(c["executed_events"])
            fp = "ok" if same else (
                f"MISMATCH ({b['executed_events']} -> {c['executed_events']})")
            if not same:
                regressed = True
        else:
            fp = "skipped (different scale)"
        flag = ""
        if delta < -threshold_pct:
            if no_timing:
                flag = "  (slower, ignored by --no-timing)"
            else:
                flag = "  << REGRESSION"
                regressed = True
        alloc_text, alloc_regressed = compare_allocs(b, c, same_scale, ignore_allocs)
        regressed |= alloc_regressed
        wire_text, wire_regressed = compare_wire_bytes(b, c, same_scale,
                                                       ignore_wire_bytes)
        regressed |= wire_regressed
        rss_text, rss_regressed = compare_rss(b, c, same_scale, ignore_rss)
        regressed |= rss_regressed
        print(f"{name:<12} {b_eps:>14.0f} {c_eps:>14.0f} {delta:>+8.1f}%  {fp}{flag}"
              f"{alloc_text}{wire_text}{rss_text}")
    for name in cand_by:
        if name not in base_by:
            print(f"{name:<12} (new workload, no baseline)")
    return regressed


def compare_suite(base_suite, cand_suite, threshold_pct, ignore_wallclock):
    """Compare suite_wall_clock sections; returns True on a gating regression.

    The candidate's serial-vs-parallel fingerprint flag always gates: a false
    there means a run's behaviour depended on its neighbours. The wall-clock
    delta gates only without --ignore-wallclock, and only when both sides ran
    the same number of suite runs.
    """
    regressed = False
    if cand_suite and not cand_suite.get("fingerprints_identical", True):
        print("suite: candidate fingerprints DIFFER between serial and parallel "
              "legs (shared state across runs?)")
        regressed = True
    if not base_suite or not cand_suite:
        return regressed
    if base_suite.get("runs") != cand_suite.get("runs"):
        print("suite: run counts differ; wall-clock comparison skipped")
        return regressed
    b_wall = float(base_suite.get("parallel_wall_s", 0))
    c_wall = float(cand_suite.get("parallel_wall_s", 0))
    delta = (c_wall - b_wall) / b_wall * 100.0 if b_wall > 0 else 0.0
    flag = ""
    if delta > threshold_pct:
        if ignore_wallclock:
            flag = "  (slower, ignored by --ignore-wallclock)"
        else:
            flag = "  << REGRESSION"
            regressed = True
    print(f"{'suite':<12} {b_wall:>13.3f}s {c_wall:>13.3f}s {delta:>+8.1f}%  "
          f"parallel wall-clock (jobs {base_suite.get('jobs', '?')} -> "
          f"{cand_suite.get('jobs', '?')}){flag}")
    return regressed


def compare_trace(base_trace, cand_trace, same_scale, no_timing):
    """Compare trace_overhead sections; returns True on a gating regression.

    The candidate's traced-vs-untraced fingerprint flag always gates: a false
    means attaching the trace recorder changed simulation behaviour. The
    overhead delta is a timing quantity: it gates only without --no-timing,
    and only at the same scale.
    """
    regressed = False
    if cand_trace and not cand_trace.get("fingerprints_identical", True):
        print("trace: candidate fingerprints DIFFER between traced and untraced "
              "runs (the recorder perturbed the simulation?)")
        regressed = True
    if not base_trace or not cand_trace:
        return regressed
    if not same_scale:
        print(f"{'trace':<12} overhead skipped (different scale)")
        return regressed
    b_pct = float(base_trace.get("overhead_pct", 0))
    c_pct = float(cand_trace.get("overhead_pct", 0))
    flag = ""
    if c_pct > b_pct + TRACE_OVERHEAD_THRESHOLD_PCT:
        if no_timing:
            flag = "  (worse, ignored by --no-timing)"
        else:
            flag = "  << REGRESSION"
            regressed = True
    print(f"{'trace':<12} overhead {b_pct:+.2f}% -> {c_pct:+.2f}% "
          f"(tracing on vs off){flag}")
    return regressed


def compare_attribution(base_attr, cand_attr, same_scale, no_timing):
    """Compare attribution_overhead sections; returns True on a regression.

    The candidate's on-vs-off fingerprint flag always gates: a false means
    attaching the attribution profiler changed simulation behaviour. The
    overhead delta is a timing quantity: it gates only without --no-timing,
    and only at the same scale. Baselines recorded before the profiler simply
    skip the delta check.
    """
    regressed = False
    if cand_attr and not cand_attr.get("fingerprints_identical", True):
        print("attribution: candidate fingerprints DIFFER between profiled and "
              "bare runs (the profiler perturbed the simulation?)")
        regressed = True
    if not base_attr or not cand_attr:
        return regressed
    if not same_scale:
        print(f"{'attribution':<12} overhead skipped (different scale)")
        return regressed
    b_pct = float(base_attr.get("overhead_pct", 0))
    c_pct = float(cand_attr.get("overhead_pct", 0))
    flag = ""
    if c_pct > b_pct + ATTRIBUTION_OVERHEAD_THRESHOLD_PCT:
        if no_timing:
            flag = "  (worse, ignored by --no-timing)"
        else:
            flag = "  << REGRESSION"
            regressed = True
    print(f"{'attribution':<12} overhead {b_pct:+.2f}% -> {c_pct:+.2f}% "
          f"(profiler on vs off){flag}")
    return regressed


def compare_realtime(base_rt, cand_rt, threshold_pct, no_timing):
    """Compare realtime_scaling sections; returns True on a gating regression.

    Realtime runs are not reproducible, so everything here is a timing
    quantity and obeys --no-timing. The candidate's own >= 1.8x gate is
    enforced by perf_sim at run time (and only on machines with enough
    hardware threads); here we additionally catch a speedup that collapsed
    relative to the baseline even while staying above the absolute floor.
    Baselines recorded before the realtime backend simply skip the check.
    """
    if not cand_rt:
        return False
    legs = cand_rt.get("legs", [])
    leg_text = ", ".join(
        f"{leg.get('workers')}w {float(leg.get('ops_per_sec', 0)):.0f} ops/s"
        for leg in legs)
    c_speedup = float(cand_rt.get("speedup_4x", 0))
    print(f"{'realtime':<12} {leg_text}  speedup(4w) {c_speedup:.2f}x "
          f"[{cand_rt.get('gate_reason', '?')}]")
    if not cand_rt.get("gate_enforced", False):
        return False  # too few hardware threads: nothing to gate against
    if not base_rt or not base_rt.get("gate_enforced", False):
        return False  # no comparable baseline measurement
    b_speedup = float(base_rt.get("speedup_4x", 0))
    if b_speedup <= 0:
        return False
    delta = (c_speedup - b_speedup) / b_speedup * 100.0
    if delta < -threshold_pct:
        if no_timing:
            print(f"{'realtime':<12} speedup {b_speedup:.2f}x -> {c_speedup:.2f}x "
                  f"(worse, ignored by --no-timing)")
            return False
        print(f"{'realtime':<12} speedup {b_speedup:.2f}x -> {c_speedup:.2f}x "
              f"<< REGRESSION")
        return True
    return False


def main(argv):
    threshold = 5.0
    ignore_wallclock = False
    ignore_allocs = False
    ignore_wire_bytes = False
    ignore_rss = False
    no_timing = False
    args = []
    i = 1
    while i < len(argv):
        if argv[i] == "--threshold" and i + 1 < len(argv):
            threshold = float(argv[i + 1])
            i += 2
        elif argv[i] == "--ignore-wallclock":
            ignore_wallclock = True
            i += 1
        elif argv[i] == "--ignore-allocs":
            ignore_allocs = True
            i += 1
        elif argv[i] == "--ignore-wire-bytes":
            ignore_wire_bytes = True
            i += 1
        elif argv[i] == "--ignore-rss":
            ignore_rss = True
            i += 1
        elif argv[i] == "--no-timing":
            no_timing = True
            ignore_wallclock = True
            i += 1
        else:
            args.append(argv[i])
            i += 1

    if len(args) == 1:
        doc = load(args[0])
        base = doc.get("baseline", {}).get("workloads")
        if not base:
            print(f"bench_diff: {args[0]} has no 'baseline' block for self mode",
                  file=sys.stderr)
            return 2
        cand = doc["workloads"]
        base_smoke = doc.get("baseline", {}).get("smoke", False)
        cand_smoke = doc.get("smoke", False)
        base_suite = doc.get("baseline", {}).get("suite_wall_clock")
        cand_suite = doc.get("suite_wall_clock")
        base_trace = doc.get("baseline", {}).get("trace_overhead")
        cand_trace = doc.get("trace_overhead")
        base_attr = doc.get("baseline", {}).get("attribution_overhead")
        cand_attr = doc.get("attribution_overhead")
        base_rt = doc.get("baseline", {}).get("realtime_scaling")
        cand_rt = doc.get("realtime_scaling")
    elif len(args) == 2:
        base_doc = load(args[0])
        cand_doc = load(args[1])
        base = base_doc["workloads"]
        cand = cand_doc["workloads"]
        base_smoke = base_doc.get("smoke", False)
        cand_smoke = cand_doc.get("smoke", False)
        base_suite = base_doc.get("suite_wall_clock")
        cand_suite = cand_doc.get("suite_wall_clock")
        base_trace = base_doc.get("trace_overhead")
        cand_trace = cand_doc.get("trace_overhead")
        base_attr = base_doc.get("attribution_overhead")
        cand_attr = cand_doc.get("attribution_overhead")
        base_rt = base_doc.get("realtime_scaling")
        cand_rt = cand_doc.get("realtime_scaling")
    else:
        print(__doc__, file=sys.stderr)
        return 2

    same_scale = base_smoke == cand_smoke
    regressed = compare(base, cand, threshold, same_scale, ignore_allocs, no_timing,
                        ignore_wire_bytes, ignore_rss)
    regressed |= compare_suite(base_suite, cand_suite, threshold, ignore_wallclock)
    regressed |= compare_trace(base_trace, cand_trace, same_scale, no_timing)
    regressed |= compare_attribution(base_attr, cand_attr, same_scale, no_timing)
    regressed |= compare_realtime(base_rt, cand_rt, threshold, no_timing)
    if regressed:
        print(f"\nFAIL: regression beyond {threshold:.1f}% (allocs: "
              f"{ALLOC_THRESHOLD_PCT:.0f}%, rss: {RSS_THRESHOLD_PCT:.0f}%) "
              f"or fingerprint mismatch")
        return 1
    print(f"\nOK: no regression (events/sec threshold {threshold:.1f}%, "
          f"allocs {ALLOC_THRESHOLD_PCT:.0f}%, rss {RSS_THRESHOLD_PCT:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
