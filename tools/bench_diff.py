#!/usr/bin/env python3
"""Compare two perf_sim BENCH_sim.json files and flag regressions.

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold PCT]
    tools/bench_diff.py BENCH_sim.json                 # self mode

Two-file mode compares per-workload events/sec (and throughput) of CANDIDATE
against BASELINE. Self mode reads a single committed BENCH_sim.json that
carries a "baseline" block (the pre-change numbers recorded when the file was
committed) and compares the current "workloads" block against it.

Exit status: 0 = no regression, 1 = events/sec regression beyond the
threshold (default 5%) or a determinism-fingerprint mismatch, 2 = usage or
parse error. Fingerprints (executed_events) are only required to match when
both runs were made at the same scale (smoke vs full).
"""

import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def by_name(workloads):
    return {w["name"]: w for w in workloads}


def compare(base, cand, threshold_pct, check_fingerprint):
    base_by = by_name(base)
    cand_by = by_name(cand)
    regressed = False
    print(f"{'workload':<12} {'base ev/s':>14} {'cand ev/s':>14} {'delta':>9}  fingerprint")
    for name, b in base_by.items():
        c = cand_by.get(name)
        if c is None:
            print(f"{name:<12} {'':>14} {'':>14} {'MISSING':>9}")
            regressed = True
            continue
        b_eps = float(b["events_per_sec"])
        c_eps = float(c["events_per_sec"])
        delta = (c_eps - b_eps) / b_eps * 100.0 if b_eps > 0 else 0.0
        if check_fingerprint:
            same = int(b["executed_events"]) == int(c["executed_events"])
            fp = "ok" if same else (
                f"MISMATCH ({b['executed_events']} -> {c['executed_events']})")
            if not same:
                regressed = True
        else:
            fp = "skipped (different scale)"
        flag = ""
        if delta < -threshold_pct:
            flag = "  << REGRESSION"
            regressed = True
        print(f"{name:<12} {b_eps:>14.0f} {c_eps:>14.0f} {delta:>+8.1f}%  {fp}{flag}")
    for name in cand_by:
        if name not in base_by:
            print(f"{name:<12} (new workload, no baseline)")
    return regressed


def main(argv):
    threshold = 5.0
    args = []
    i = 1
    while i < len(argv):
        if argv[i] == "--threshold" and i + 1 < len(argv):
            threshold = float(argv[i + 1])
            i += 2
        else:
            args.append(argv[i])
            i += 1

    if len(args) == 1:
        doc = load(args[0])
        base = doc.get("baseline", {}).get("workloads")
        if not base:
            print(f"bench_diff: {args[0]} has no 'baseline' block for self mode",
                  file=sys.stderr)
            return 2
        cand = doc["workloads"]
        base_smoke = doc.get("baseline", {}).get("smoke", False)
        cand_smoke = doc.get("smoke", False)
    elif len(args) == 2:
        base_doc = load(args[0])
        cand_doc = load(args[1])
        base = base_doc["workloads"]
        cand = cand_doc["workloads"]
        base_smoke = base_doc.get("smoke", False)
        cand_smoke = cand_doc.get("smoke", False)
    else:
        print(__doc__, file=sys.stderr)
        return 2

    check_fingerprint = base_smoke == cand_smoke
    regressed = compare(base, cand, threshold, check_fingerprint)
    if regressed:
        print(f"\nFAIL: regression beyond {threshold:.1f}% or fingerprint mismatch")
        return 1
    print(f"\nOK: no events/sec regression beyond {threshold:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
