#!/usr/bin/env bash
# One-command CI: configure, build and test the three trees this repo gates on.
#
#   native  build/        plain build, full ctest suite
#   asan    build-asan/   AddressSanitizer + UBSan, full ctest suite
#   tsan    build-tsan/   ThreadSanitizer, the `tsan_smoke` ctest label
#                         (concurrent sweep isolation + the realtime backend;
#                         the full suite under TSan is deterministic
#                         single-threaded code and would only re-prove native)
#
# Usage:
#   tools/run_ci.sh              # all three trees
#   tools/run_ci.sh native,tsan  # a comma-separated subset
#   JOBS=8 tools/run_ci.sh       # override parallelism (default: nproc)
#
# Build directories are persistent, so reruns are incremental. Exits nonzero
# on the first configure, build, or test failure.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
TREES="${1:-native,asan,tsan}"

build_tree() {
  local name="$1" dir="$2"
  shift 2
  echo "=== [${name}] configure + build (${dir}, -j${JOBS}) ==="
  cmake -B "${dir}" -S . "$@"
  cmake --build "${dir}" -j "${JOBS}"
}

telemetry_smoke() {
  # The telemetry path end-to-end through the CLI: an open-loop flash crowd
  # with the attribution profiler and windowed time series on, the exported
  # JSON schema-checked by the report renderer. Runs in every tree so the
  # sampler and profiler also see the sanitizers.
  local name="$1" dir="$2"
  echo "=== [${name}] saturn_sim telemetry smoke ==="
  "./${dir}/tools/saturn_sim" --protocol=saturn --dcs=3 --open-loop=3000 \
    --arrival-rate=2000 --arrival-plan="1200:burst:*:4:300" \
    --zipf-sessions=0.9 --warmup=1 --seconds=1 \
    --attribution --timeseries-out="${dir}/ci_timeseries.json" \
    --timeseries-window=100 > /dev/null
  python3 tools/telemetry_report.py --check "${dir}/ci_timeseries.json"
}

for tree in ${TREES//,/ }; do
  case "${tree}" in
    native)
      build_tree native build
      echo "=== [native] ctest (full suite) ==="
      ctest --test-dir build --output-on-failure -j "${JOBS}"
      echo "=== [native] saturn_sim open-loop smoke ==="
      # The million-user engine end-to-end through the CLI: open-loop saturn
      # with a flash-crowd plan on the procedural keyspace. Small enough for
      # CI; the scale gates live in perf_sim_smoke / perf_sim_alloc_budget.
      ./build/tools/saturn_sim --protocol=saturn --dcs=3 --open-loop=3000 \
        --arrival-rate=2000 --arrival-plan="1200:burst:*:4:300" \
        --zipf-sessions=0.9 --warmup=1 --seconds=1 > /dev/null
      telemetry_smoke native build
      ;;
    asan)
      build_tree asan build-asan -DSATURN_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
      echo "=== [asan] ctest (full suite) ==="
      ctest --test-dir build-asan --output-on-failure -j "${JOBS}"
      telemetry_smoke asan build-asan
      ;;
    tsan)
      build_tree tsan build-tsan -DSATURN_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
      echo "=== [tsan] ctest (-L tsan_smoke) ==="
      ctest --test-dir build-tsan --output-on-failure -L tsan_smoke -j "${JOBS}"
      telemetry_smoke tsan build-tsan
      ;;
    *)
      echo "run_ci.sh: unknown tree '${tree}' (expected native, asan, tsan)" >&2
      exit 2
      ;;
  esac
done

echo "=== CI green: ${TREES} ==="
