#!/usr/bin/env python3
"""Render saturn time-series telemetry JSON as a self-contained HTML report.

Input is the file written by `saturn_sim --timeseries-out` (schema
"saturn-timeseries-v1"): windowed counter deltas, gauge levels and histogram
quantiles, plus the embedded visibility-attribution block when the run used
--attribution. Output is one HTML file with inline SVG charts — no external
scripts, stylesheets or fonts, so the report can be attached to a bug or
opened from a CI artifact store without a network.

The report shows:
  * one sparkline per scalar metric (counter deltas per window, gauge levels);
  * p50/p99-over-time charts for every histogram metric;
  * the attribution phase breakdown: a stacked share bar of mean visibility
    time per phase, the phase summary table, and per-(src,dst) DC pair rows.

Usage:
    telemetry_report.py [--out=REPORT.html] [--check] TIMESERIES.json

--check validates the schema and exits without writing a report (CI smoke).
Default output path is the input with its extension replaced by ".html".

Exits 0 on success, 1 on schema errors. Library use: validate(doc) returns a
list of error strings; render(doc, title) returns the HTML string.
"""

import html
import json
import os
import sys

SCHEMA = "saturn-timeseries-v1"
HIST_KEYS = ("count", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "min_ms",
             "max_ms")
PHASE_ORDER = ("commit_sink", "serializer", "tree", "buffer", "stability")
# Fill colors for the stacked phase bar, one per PHASE_ORDER entry.
PHASE_COLORS = ("#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1")


def _is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _is_int(v):
    return isinstance(v, int) and not isinstance(v, bool)


def _check_hist(errors, where, summary):
    if not isinstance(summary, dict):
        errors.append(f"{where}: histogram summary must be an object")
        return
    for key in HIST_KEYS:
        if not _is_num(summary.get(key)):
            errors.append(f"{where}: missing numeric {key!r}")


def validate(doc):
    """Validate a parsed time-series document. Returns error strings."""
    errors = []
    if not isinstance(doc, dict):
        return ["document: top level must be an object"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"document: schema is {doc.get('schema')!r}, "
                      f"expected {SCHEMA!r}")
    if not _is_int(doc.get("window_us")) or doc["window_us"] <= 0:
        errors.append("document: window_us must be a positive integer")
    windows = doc.get("windows")
    if not isinstance(windows, list):
        return errors + ["document: missing windows array"]

    scalar_names = None
    hist_names = None
    prev_end = None
    for i, win in enumerate(windows):
        where = f"window {i}"
        if not isinstance(win, dict):
            errors.append(f"{where}: not an object")
            continue
        start, end = win.get("start_us"), win.get("end_us")
        if not _is_int(start) or not _is_int(end) or start >= end:
            errors.append(f"{where}: needs integer start_us < end_us")
        elif prev_end is not None and start != prev_end:
            errors.append(f"{where}: starts at {start}, previous window "
                          f"ended at {prev_end}")
        else:
            prev_end = end
        scalars = win.get("scalars")
        if not isinstance(scalars, dict):
            errors.append(f"{where}: missing scalars object")
        else:
            for name, value in scalars.items():
                if not _is_num(value):
                    errors.append(f"{where}: scalar {name!r} not numeric")
            if scalar_names is None:
                scalar_names = set(scalars)
            elif set(scalars) != scalar_names:
                errors.append(f"{where}: scalar names differ from window 0")
        hists = win.get("histograms")
        if not isinstance(hists, dict):
            errors.append(f"{where}: missing histograms object")
        else:
            for name, summary in hists.items():
                _check_hist(errors, f"{where} histogram {name!r}", summary)
            if hist_names is None:
                hist_names = set(hists)
            elif set(hists) != hist_names:
                errors.append(f"{where}: histogram names differ from window 0")

    attribution = doc.get("attribution")
    if attribution is not None:
        errors.extend(_validate_attribution(attribution))
    return errors


def _validate_attribution(attr):
    errors = []
    if not isinstance(attr, dict):
        return ["attribution: must be an object"]
    if not _is_int(attr.get("samples")) or attr["samples"] < 0:
        errors.append("attribution: samples must be a nonnegative integer")
    phases = attr.get("phases")
    if not isinstance(phases, dict):
        errors.append("attribution: missing phases object")
    else:
        for name in PHASE_ORDER + ("total", "tree_hop"):
            if name not in phases:
                errors.append(f"attribution: missing phase {name!r}")
            else:
                _check_hist(errors, f"attribution phase {name!r}",
                            phases[name])
    pairs = attr.get("pairs")
    if not isinstance(pairs, list):
        errors.append("attribution: missing pairs array")
        return errors
    for i, pair in enumerate(pairs):
        where = f"attribution pair {i}"
        if not isinstance(pair, dict):
            errors.append(f"{where}: not an object")
            continue
        if not _is_int(pair.get("src")) or not _is_int(pair.get("dst")):
            errors.append(f"{where}: needs integer src and dst")
        _check_hist(errors, f"{where} total", pair.get("total"))
        pair_phases = pair.get("phases")
        if not isinstance(pair_phases, dict):
            errors.append(f"{where}: missing phases object")
            continue
        for name in PHASE_ORDER:
            _check_hist(errors, f"{where} phase {name!r}",
                        pair_phases.get(name))
    return errors


# ---------------------------------------------------------------- rendering

_CSS = """
body { font: 13px/1.5 system-ui, sans-serif; margin: 2em auto; max-width: 72em;
       color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.15em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: right; }
th { background: #f2f2f2; } td.name { text-align: left; font-family: monospace; }
.chart { display: inline-block; margin: 0.4em 1em 0.4em 0; vertical-align: top; }
.chart figcaption { font-family: monospace; font-size: 11px; color: #444; }
.meta { color: #666; }
svg { background: #fafafa; border: 1px solid #ddd; }
.legend span { display: inline-block; margin-right: 1.2em; }
.swatch { display: inline-block; width: 0.8em; height: 0.8em; margin-right: 0.3em;
          vertical-align: -0.1em; }
"""


def _fmt(v):
    if isinstance(v, float):
        return f"{v:g}"
    return str(v)


def _polyline(values, width, height, lo=None, hi=None):
    """SVG points string for `values` scaled into a width x height box."""
    if lo is None:
        lo = min(values)
    if hi is None:
        hi = max(values)
    span = hi - lo
    points = []
    for i, v in enumerate(values):
        x = 2 + (width - 4) * (i / max(1, len(values) - 1))
        y = height - 2 - (height - 4) * ((v - lo) / span if span > 0 else 0.5)
        points.append(f"{x:.1f},{y:.1f}")
    return " ".join(points)


def _sparkline(name, values, width=220, height=48, series=None):
    """One labelled chart. `values` is a list, or pass `series` as a list of
    (label, color, values) to overlay several lines on a shared scale."""
    if series is None:
        series = [("", "#4e79a7", values)]
    all_values = [v for _, _, vs in series for v in vs]
    lo, hi = min(all_values), max(all_values)
    lines = []
    for label, color, vs in series:
        if len(vs) == 1:
            vs = vs * 2  # a single window still draws a (flat) segment
        lines.append(f'<polyline fill="none" stroke="{color}" '
                     f'stroke-width="1.5" '
                     f'points="{_polyline(vs, width, height, lo, hi)}"/>')
    caption = html.escape(name)
    if series[0][0]:
        caption += " (" + ", ".join(
            f'<span style="color:{c}">{html.escape(l)}</span>'
            for l, c, _ in series) + ")"
    return (f'<figure class="chart"><svg width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">{"".join(lines)}</svg>'
            f'<figcaption>{caption}<br>min {_fmt(lo)} &middot; '
            f'max {_fmt(hi)}</figcaption></figure>')


def _hist_row(name, summary, header=False):
    if header:
        cells = "".join(f"<th>{k}</th>" for k in HIST_KEYS)
        return f'<tr><th>{html.escape(name)}</th>{cells}</tr>'
    cells = "".join(f"<td>{_fmt(summary[k])}</td>" for k in HIST_KEYS)
    return f'<tr><td class="name">{html.escape(name)}</td>{cells}</tr>'


def _stacked_bar(parts, width=480, height=22):
    """Horizontal stacked bar; parts is a list of (label, color, value)."""
    total = sum(v for _, _, v in parts)
    if total <= 0:
        return '<span class="meta">(no samples)</span>'
    rects, x = [], 0.0
    for label, color, value in parts:
        w = width * value / total
        rects.append(f'<rect x="{x:.1f}" y="0" width="{w:.1f}" '
                     f'height="{height}" fill="{color}">'
                     f'<title>{html.escape(label)}: {value:.3f} ms '
                     f'({100 * value / total:.1f}%)</title></rect>')
        x += w
    return (f'<svg width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">{"".join(rects)}</svg>')


def _render_timeseries(doc, out):
    windows = doc["windows"]
    out.append(f'<p class="meta">{len(windows)} windows of '
               f'{doc["window_us"] / 1000:g} ms')
    if windows:
        span = windows[-1]["end_us"] - windows[0]["start_us"]
        out.append(f' covering {span / 1000:g} ms of simulated time')
    out.append('.</p>')
    if not windows:
        return

    out.append('<h2>Scalars (counter deltas and gauge levels per window)</h2>')
    for name in sorted(windows[0]["scalars"]):
        values = [w["scalars"][name] for w in windows]
        out.append(_sparkline(name, values))

    out.append('<h2>Histograms (per-window quantiles, ms)</h2>')
    for name in sorted(windows[0]["histograms"]):
        hists = [w["histograms"][name] for w in windows]
        if not any(h["count"] for h in hists):
            continue
        out.append(_sparkline(
            name, None,
            series=[("p50", "#4e79a7", [h["p50_ms"] for h in hists]),
                    ("p99", "#e15759", [h["p99_ms"] for h in hists])]))


def _render_attribution(attr, out):
    out.append('<h2>Visibility attribution</h2>')
    out.append(f'<p class="meta">{attr["samples"]} sampled label journeys '
               'decomposed into phases (commit&rarr;sink, serializer '
               'queue+batch, tree propagation, dest buffering, stability '
               'wait). Phase durations sum exactly to the visibility '
               'latency.</p>')
    phases = attr["phases"]
    parts = [(name, PHASE_COLORS[i], phases[name]["mean_ms"])
             for i, name in enumerate(PHASE_ORDER)]
    out.append('<p>Mean share: ' + _stacked_bar(parts) + '</p>')
    out.append('<p class="legend">' + "".join(
        f'<span><span class="swatch" style="background:{c}"></span>'
        f'{html.escape(n)}</span>' for n, c, _ in parts) + '</p>')

    out.append('<table>')
    out.append(_hist_row("phase", None, header=True))
    for name in PHASE_ORDER + ("total", "tree_hop"):
        out.append(_hist_row(name, phases[name]))
    out.append('</table>')

    pairs = attr.get("pairs", [])
    if pairs:
        out.append('<h2>Per DC pair (src &rarr; dst)</h2><table>')
        out.append('<tr><th>pair</th><th>count</th><th>total mean</th>'
                   '<th>total p99</th><th>mean share by phase</th></tr>')
        for pair in pairs:
            parts = [(name, PHASE_COLORS[i],
                      pair["phases"][name]["mean_ms"])
                     for i, name in enumerate(PHASE_ORDER)]
            out.append(
                f'<tr><td class="name">{pair["src"]} &rarr; {pair["dst"]}'
                f'</td><td>{pair["total"]["count"]}</td>'
                f'<td>{_fmt(pair["total"]["mean_ms"])}</td>'
                f'<td>{_fmt(pair["total"]["p99_ms"])}</td>'
                f'<td style="text-align:left">'
                f'{_stacked_bar(parts, width=320, height=14)}</td></tr>')
        out.append('</table>')


def render(doc, title="saturn telemetry"):
    """Render a validated document to a self-contained HTML string."""
    out = [f'<!DOCTYPE html><html><head><meta charset="utf-8">'
           f'<title>{html.escape(title)}</title>'
           f'<style>{_CSS}</style></head><body>'
           f'<h1>{html.escape(title)}</h1>']
    _render_timeseries(doc, out)
    if doc.get("attribution") is not None:
        _render_attribution(doc["attribution"], out)
    out.append('</body></html>\n')
    return "".join(out)


def main(argv):
    out_path = None
    check_only = False
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--out="):
            out_path = arg[len("--out="):]
        elif arg == "--check":
            check_only = True
        elif arg.startswith("--"):
            print(f"unknown flag: {arg}")
            return 2
        else:
            paths.append(arg)
    if len(paths) != 1:
        print("usage: telemetry_report.py [--out=REPORT.html] [--check] "
              "TIMESERIES.json")
        return 2
    path = paths[0]
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: cannot load: {e}")
        return 1
    errors = validate(doc)
    if errors:
        for e in errors:
            print(f"{path}: {e}")
        return 1
    n = len(doc["windows"])
    attr = doc.get("attribution")
    summary = f"{n} windows" + (
        f", attribution over {attr['samples']} samples" if attr else "")
    if check_only:
        print(f"{path}: OK ({summary})")
        return 0
    if out_path is None:
        out_path = os.path.splitext(path)[0] + ".html"
    html_text = render(doc, title=os.path.basename(path))
    with open(out_path, "w") as f:
        f.write(html_text)
    print(f"{path}: OK ({summary}) -> {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
