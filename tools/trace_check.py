#!/usr/bin/env python3
"""Validate Chrome trace-event JSON exported by the saturn simulator.

Checks the structural invariants the trace recorder promises:

  * the document is {"displayTimeUnit": ..., "traceEvents": [...]} and every
    event is an object with the fields its phase requires;
  * non-metadata timestamps are non-decreasing in file order (the exporter
    stable-sorts by (ts, collection seq));
  * async spans (ph "b"/"e", cat "span") are matched: per (cat, id, name) key
    every end has a begin at an earlier-or-equal timestamp, depth never goes
    negative and ends at zero — ring eviction must never orphan half a span;
  * flows (cat "journey") are complete journeys: per id, exactly one start
    ("s") first and one finish ("f", with bp "e") last, steps ("t") in
    between, timestamps non-decreasing — a sampled label either stitches its
    whole path or emits no flow at all;
  * complete-slice events ("X") have a non-negative duration;
  * attribution phase instants (names "phase-*", emitted by --attribution)
    carry a journey uid and land inside that journey's flow: at or after the
    flow's start and at or before its finish — a backdated phase boundary
    outside its own journey means the decomposition was mis-attributed.

Usage:
    trace_check.py [--require-span=NAME ...] [--require-counter=NAME ...]
                   TRACE.json [TRACE2.json ...]

--require-span=NAME additionally demands that every file contain at least one
*matched* async span named NAME (begin and end both present). Migration
exports use it to prove an epoch switch ran to completion: e.g.
--require-span=reconfig-switch fails on a trace where the controller started
a switch that never finished, and the structural flow check above already
fails if a label journey was torn by the migration.

--require-counter=NAME demands at least one counter ("C") event named NAME,
proving a counter track was actually recorded (e.g. queue-depth telemetry).

Exits 0 when every file passes, 1 otherwise (one "file: error" line per
problem). Library use: validate(doc, require_spans=[...],
require_counters=[...]) returns the list of error strings.
"""

import json
import sys

# Phases the recorder exports. Anything else is a schema violation.
KNOWN_PHASES = {"M", "i", "X", "b", "e", "C", "s", "t", "f"}
MAX_ERRORS_PER_FILE = 20


def _is_int(v):
    return isinstance(v, int) and not isinstance(v, bool)


def validate(doc, require_spans=(), require_counters=()):
    """Validate a parsed trace document. Returns a list of error strings."""
    errors = []

    def err(i, msg):
        errors.append(f"event {i}: {msg}")

    if not isinstance(doc, dict):
        return ["document: top level must be an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["document: missing traceEvents array"]

    last_ts = None
    seen_non_meta = False
    # (cat, id, name) -> [depth, begin_ts stack]
    span_state = {}
    # flow id -> list of (phase, ts)
    flows = {}
    counters_seen = set()
    # journey uid -> list of (instant name, ts, event index)
    phase_instants = {}

    for i, ev in enumerate(events):
        if len(errors) >= MAX_ERRORS_PER_FILE:
            errors.append("... (more errors suppressed)")
            break
        if not isinstance(ev, dict):
            err(i, "not an object")
            continue
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            err(i, f"unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            err(i, f"phase {ph!r} missing name")
            continue

        if ph == "M":
            if seen_non_meta:
                err(i, "metadata event after non-metadata events")
            if ev["name"] not in ("process_name", "thread_name"):
                err(i, f"unexpected metadata record {ev['name']!r}")
            elif not isinstance(ev.get("args", {}).get("name"), str):
                err(i, "metadata record missing args.name")
            continue

        seen_non_meta = True
        ts = ev.get("ts")
        if not _is_int(ts):
            err(i, f"phase {ph!r} ({ev['name']}) has no integer ts")
            continue
        if not _is_int(ev.get("tid")):
            err(i, f"phase {ph!r} ({ev['name']}) has no integer tid")
        if last_ts is not None and ts < last_ts:
            err(i, f"timestamp went backwards: {ts} after {last_ts}")
        last_ts = ts

        if ph == "i":
            if ev.get("s") not in ("t", "p", "g"):
                err(i, f"instant {ev['name']!r} missing scope s")
            if ev["name"].startswith("phase-"):
                uid = ev.get("args", {}).get("uid")
                if not _is_int(uid):
                    err(i, f"phase instant {ev['name']!r} missing args.uid")
                else:
                    phase_instants.setdefault(uid, []).append((ev["name"], ts, i))
        elif ph == "X":
            dur = ev.get("dur")
            if not _is_int(dur) or dur < 0:
                err(i, f"slice {ev['name']!r} has invalid dur {dur!r}")
        elif ph == "C":
            value = ev.get("args", {}).get("value")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                err(i, f"counter {ev['name']!r} missing numeric args.value")
            else:
                counters_seen.add(ev["name"])
        elif ph in ("b", "e"):
            if "id" not in ev:
                err(i, f"async {ph!r} {ev['name']!r} missing id")
                continue
            key = (ev.get("cat"), ev["id"], ev["name"])
            state = span_state.setdefault(key, [0, []])
            if ph == "b":
                state[0] += 1
                state[1].append(ts)
            else:
                if state[0] == 0:
                    err(i, f"span end without begin: {key}")
                    continue
                state[0] -= 1
                begin_ts = state[1].pop()
                if ts < begin_ts:
                    err(i, f"span {key} ends at {ts} before its begin {begin_ts}")
        elif ph in ("s", "t", "f"):
            if "id" not in ev:
                err(i, f"flow {ph!r} {ev['name']!r} missing id")
                continue
            if ph == "f" and ev.get("bp") != "e":
                err(i, f"flow finish id={ev['id']} missing bp=\"e\"")
            flows.setdefault(ev["id"], []).append((ph, ts, i))

    for key, (depth, _) in sorted(span_state.items(), key=str):
        if depth != 0:
            errors.append(f"span {key}: {depth} begin(s) never closed")

    for name in require_spans:
        begun = [key for key in span_state if key[2] == name]
        if not begun:
            errors.append(f"required span {name!r}: no span with this name")
            continue
        if all(span_state[key][0] != 0 for key in begun):
            errors.append(f"required span {name!r}: began but never completed")

    for name in require_counters:
        if name not in counters_seen:
            errors.append(f"required counter {name!r}: never recorded")

    # Attribution phase instants must sit inside their journey's flow: the
    # earliest boundary is the commit hop (flow start) and the last is a
    # visible hop, never after the flow finish.
    for uid in sorted(phase_instants, key=str):
        if uid not in flows:
            errors.append(f"phase instants for uid={uid}: no journey flow with "
                          f"this id")
            continue
        steps = flows[uid]
        flow_start = min(ts for _, ts, _ in steps)
        flow_end = max(ts for _, ts, _ in steps)
        for name, ts, i in phase_instants[uid]:
            if ts < flow_start or ts > flow_end:
                errors.append(f"phase instant {name!r} (event {i}) at {ts} "
                              f"outside journey uid={uid} flow "
                              f"[{flow_start}, {flow_end}]")

    for fid in sorted(flows, key=str):
        steps = flows[fid]
        phases = [ph for ph, _, _ in steps]
        first_index = steps[0][2]
        if phases[0] != "s":
            errors.append(f"flow id={fid}: starts with {phases[0]!r}, not 's' "
                          f"(event {first_index})")
        if phases[-1] != "f":
            errors.append(f"flow id={fid}: ends with {phases[-1]!r}, not 'f'")
        if phases.count("s") != 1 or phases.count("f") != 1:
            errors.append(f"flow id={fid}: expected one start and one finish, "
                          f"got {phases}")
        for (_, prev_ts, _), (ph, ts, i) in zip(steps, steps[1:]):
            if ts < prev_ts:
                errors.append(f"flow id={fid}: step at event {i} goes back in "
                              f"time ({ts} < {prev_ts})")

    return errors


def summarize(doc):
    """One-line content summary for a valid document."""
    counts = {}
    for ev in doc.get("traceEvents", []):
        ph = ev.get("ph", "?")
        counts[ph] = counts.get(ph, 0) + 1
    flows = len({ev.get("id") for ev in doc["traceEvents"] if ev.get("ph") == "s"})
    spans = counts.get("b", 0)
    total = sum(n for ph, n in counts.items() if ph != "M")
    return f"{total} events, {spans} spans, {flows} flows"


def main(argv):
    require_spans = []
    require_counters = []
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--require-span="):
            require_spans.append(arg[len("--require-span="):])
        elif arg.startswith("--require-counter="):
            require_counters.append(arg[len("--require-counter="):])
        elif arg.startswith("--"):
            print(f"unknown flag: {arg}")
            return 2
        else:
            paths.append(arg)
    if not paths:
        print(__doc__.strip().splitlines()[0])
        print("usage: trace_check.py [--require-span=NAME ...] "
              "[--require-counter=NAME ...] TRACE.json [...]")
        return 2
    failed = False
    for path in paths:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"{path}: cannot load: {e}")
            failed = True
            continue
        errors = validate(doc, require_spans, require_counters)
        if errors:
            for e in errors:
                print(f"{path}: {e}")
            failed = True
        else:
            print(f"{path}: OK ({summarize(doc)})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
