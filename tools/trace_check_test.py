#!/usr/bin/env python3
"""Unit tests for trace_check.py — the trace validator is itself validated."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import trace_check  # noqa: E402

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "trace_check.py")


def meta(tid, name):
    record = "process_name" if tid == 0 else "thread_name"
    return {"ph": "M", "pid": 1, "tid": tid, "name": record, "args": {"name": name}}


def instant(ts, tid=0, name="tick"):
    return {"ph": "i", "pid": 1, "tid": tid, "ts": ts, "name": name, "s": "t"}


def slice_(ts, tid=0, name="hop", dur=1):
    return {"ph": "X", "pid": 1, "tid": tid, "ts": ts, "name": name, "dur": dur}


def counter(ts, tid=0, name="queue", value=3):
    return {"ph": "C", "pid": 1, "tid": tid, "ts": ts, "name": name,
            "args": {"value": value}}


def span(ph, ts, tid=1, name="timestamp-mode"):
    return {"ph": ph, "pid": 1, "tid": tid, "ts": ts, "name": name,
            "cat": "span", "id": tid}


def flow(ph, ts, fid, tid=0):
    ev = {"ph": ph, "pid": 1, "tid": tid, "ts": ts, "name": "label",
          "cat": "journey", "id": fid}
    if ph == "f":
        ev["bp"] = "e"
    return ev


def doc(events):
    return {"displayTimeUnit": "ms",
            "traceEvents": [meta(0, "saturn-sim"), meta(1, "sim")] + events}


class ValidateTest(unittest.TestCase):
    def test_minimal_valid_document(self):
        self.assertEqual(trace_check.validate(doc([])), [])

    def test_full_valid_document(self):
        d = doc([
            instant(10),
            slice_(20),
            span("b", 30),
            counter(40),
            flow("s", 50, fid=8),
            flow("t", 60, fid=8, tid=1),
            span("e", 65),
            flow("f", 70, fid=8, tid=1),
        ])
        self.assertEqual(trace_check.validate(d), [])

    def test_rejects_non_object_document(self):
        self.assertTrue(trace_check.validate([]))
        self.assertTrue(trace_check.validate({"events": []}))

    def test_rejects_unknown_phase(self):
        errors = trace_check.validate(doc([{"ph": "Z", "ts": 1, "name": "x"}]))
        self.assertTrue(any("unknown phase" in e for e in errors))

    def test_rejects_missing_name(self):
        errors = trace_check.validate(
            doc([{"ph": "i", "pid": 1, "tid": 0, "ts": 1, "s": "t"}]))
        self.assertTrue(any("missing name" in e for e in errors))

    def test_rejects_backwards_timestamps(self):
        errors = trace_check.validate(doc([instant(20), instant(10)]))
        self.assertTrue(any("backwards" in e for e in errors))

    def test_rejects_negative_duration(self):
        errors = trace_check.validate(doc([slice_(10, dur=-1)]))
        self.assertTrue(any("invalid dur" in e for e in errors))

    def test_rejects_counter_without_value(self):
        bad = counter(10)
        del bad["args"]
        errors = trace_check.validate(doc([bad]))
        self.assertTrue(any("numeric args.value" in e for e in errors))

    def test_rejects_orphan_span_end(self):
        errors = trace_check.validate(doc([span("e", 10)]))
        self.assertTrue(any("end without begin" in e for e in errors))

    def test_rejects_unclosed_span(self):
        errors = trace_check.validate(doc([span("b", 10)]))
        self.assertTrue(any("never closed" in e for e in errors))

    def test_sequential_spans_on_one_key_are_fine(self):
        d = doc([span("b", 10), span("e", 20), span("b", 30), span("e", 40)])
        self.assertEqual(trace_check.validate(d), [])

    def test_rejects_flow_without_start(self):
        errors = trace_check.validate(doc([flow("t", 10, fid=8),
                                           flow("f", 20, fid=8)]))
        self.assertTrue(any("not 's'" in e for e in errors))

    def test_rejects_flow_without_finish(self):
        errors = trace_check.validate(doc([flow("s", 10, fid=8),
                                           flow("t", 20, fid=8)]))
        self.assertTrue(any("not 'f'" in e for e in errors))

    def test_rejects_flow_finish_without_binding_point(self):
        bad = flow("f", 20, fid=8)
        del bad["bp"]
        errors = trace_check.validate(doc([flow("s", 10, fid=8), bad]))
        self.assertTrue(any("bp" in e for e in errors))

    def test_rejects_double_start(self):
        errors = trace_check.validate(doc([flow("s", 10, fid=8),
                                           flow("s", 20, fid=8),
                                           flow("f", 30, fid=8)]))
        self.assertTrue(any("one start and one finish" in e for e in errors))

    def test_independent_flows_do_not_interfere(self):
        d = doc([flow("s", 10, fid=8), flow("s", 11, fid=16),
                 flow("f", 20, fid=8), flow("f", 21, fid=16)])
        self.assertEqual(trace_check.validate(d), [])

    def test_require_counter_present(self):
        d = doc([counter(10, name="queue-depth")])
        self.assertEqual(
            trace_check.validate(d, require_counters=["queue-depth"]), [])

    def test_require_counter_missing(self):
        errors = trace_check.validate(doc([counter(10, name="queue-depth")]),
                                      require_counters=["replication-lag"])
        self.assertTrue(any("required counter 'replication-lag'" in e
                            and "never recorded" in e for e in errors))

    def test_require_counter_ignores_other_phases(self):
        # An instant with the right name is not a counter track.
        errors = trace_check.validate(doc([instant(10, name="queue-depth")]),
                                      require_counters=["queue-depth"])
        self.assertTrue(any("never recorded" in e for e in errors))

    def phase_instant(self, ts, uid, name="phase-tree"):
        return {"ph": "i", "pid": 1, "tid": 0, "ts": ts, "name": name,
                "s": "t", "args": {"uid": uid, "a": 5, "b": 1}}

    def test_phase_instants_inside_flow_pass(self):
        d = doc([flow("s", 10, fid=8),
                 self.phase_instant(12, uid=8, name="phase-commit-sink"),
                 flow("t", 15, fid=8, tid=1),
                 self.phase_instant(18, uid=8, name="phase-tree"),
                 flow("f", 20, fid=8, tid=1)])
        self.assertEqual(trace_check.validate(d), [])

    def test_phase_instant_on_flow_boundaries_passes(self):
        d = doc([flow("s", 10, fid=8),
                 self.phase_instant(10, uid=8),
                 flow("f", 20, fid=8),
                 self.phase_instant(20, uid=8, name="phase-stability")])
        self.assertEqual(trace_check.validate(d), [])

    def test_phase_instant_outside_flow_fails(self):
        d = doc([flow("s", 10, fid=8),
                 flow("f", 20, fid=8),
                 self.phase_instant(25, uid=8)])
        errors = trace_check.validate(d)
        self.assertTrue(any("outside journey uid=8" in e for e in errors))

    def test_phase_instant_without_flow_fails(self):
        errors = trace_check.validate(doc([self.phase_instant(10, uid=99)]))
        self.assertTrue(any("uid=99: no journey flow" in e for e in errors))

    def test_phase_instant_without_uid_fails(self):
        bad = self.phase_instant(10, uid=8)
        del bad["args"]["uid"]
        errors = trace_check.validate(doc([flow("s", 5, fid=8), bad,
                                           flow("f", 20, fid=8)]))
        self.assertTrue(any("missing args.uid" in e for e in errors))

    def test_plain_instant_needs_no_uid(self):
        # Only "phase-*" instants are attribution records; others are exempt.
        d = doc([instant(10, name="label-created")])
        self.assertEqual(trace_check.validate(d), [])

    def test_error_flood_is_capped(self):
        d = doc([{"ph": "Z", "ts": i, "name": "x"} for i in range(100)])
        errors = trace_check.validate(d)
        self.assertLessEqual(len(errors), trace_check.MAX_ERRORS_PER_FILE + 1)
        self.assertIn("suppressed", errors[-1])


class MainTest(unittest.TestCase):
    def run_main(self, *docs):
        paths = []
        with tempfile.TemporaryDirectory() as tmp:
            for i, d in enumerate(docs):
                path = os.path.join(tmp, f"t{i}.json")
                with open(path, "w") as f:
                    json.dump(d, f)
                paths.append(path)
            proc = subprocess.run([sys.executable, SCRIPT] + paths,
                                  capture_output=True, text=True)
        return proc.returncode, proc.stdout

    def test_ok_file_exits_zero_and_summarizes(self):
        code, out = self.run_main(doc([instant(10), flow("s", 10, fid=8),
                                       flow("f", 20, fid=8)]))
        self.assertEqual(code, 0)
        self.assertIn("OK", out)
        self.assertIn("1 flows", out)

    def test_require_counter_flag(self):
        d = doc([counter(10, name="queue-depth")])
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "t.json")
            with open(path, "w") as f:
                json.dump(d, f)
            ok = subprocess.run(
                [sys.executable, SCRIPT, "--require-counter=queue-depth", path],
                capture_output=True, text=True)
            bad = subprocess.run(
                [sys.executable, SCRIPT, "--require-counter=nope", path],
                capture_output=True, text=True)
        self.assertEqual(ok.returncode, 0)
        self.assertEqual(bad.returncode, 1)
        self.assertIn("never recorded", bad.stdout)

    def test_bad_file_exits_one(self):
        code, out = self.run_main(doc([span("b", 10)]))
        self.assertEqual(code, 1)
        self.assertIn("never closed", out)

    def test_one_bad_file_fails_the_batch(self):
        code, _ = self.run_main(doc([]), doc([instant(20), instant(10)]))
        self.assertEqual(code, 1)

    def test_unparseable_file_exits_one(self):
        with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
            f.write("{not json")
            path = f.name
        try:
            proc = subprocess.run([sys.executable, SCRIPT, path],
                                  capture_output=True, text=True)
            self.assertEqual(proc.returncode, 1)
            self.assertIn("cannot load", proc.stdout)
        finally:
            os.unlink(path)

    def test_no_arguments_exits_two(self):
        proc = subprocess.run([sys.executable, SCRIPT],
                              capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()
