#!/usr/bin/env python3
"""Unit tests for tools/bench_diff.py (run via ctest or directly)."""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff  # noqa: E402


def workload(name, events=1000, eps=50000.0, allocs_per_event=None,
             metadata_wire_bytes=None, total_wire_bytes=None,
             peak_rss_kb=10000):
    w = {
        "name": name,
        "executed_events": events,
        "wall_s": events / eps,
        "events_per_sec": eps,
        "throughput_ops": 1234.0,
    }
    if peak_rss_kb is not None:
        w["peak_rss_kb"] = peak_rss_kb
    if allocs_per_event is not None:
        w["allocs"] = int(events * allocs_per_event)
        w["alloc_bytes"] = w["allocs"] * 64
        w["allocs_per_event"] = allocs_per_event
    if metadata_wire_bytes is not None:
        w["metadata_wire_bytes"] = metadata_wire_bytes
    if total_wire_bytes is not None:
        w["total_wire_bytes"] = total_wire_bytes
    return w


def suite(runs=12, jobs=4, serial=8.0, parallel=2.5, fingerprints=True):
    return {
        "runs": runs,
        "jobs": jobs,
        "hardware_concurrency": jobs,
        "serial_wall_s": serial,
        "parallel_wall_s": parallel,
        "speedup": serial / parallel,
        "total_events": 5000000,
        "fingerprints_identical": fingerprints,
        "peak_rss_kb": 20000,
    }


def trace(overhead_pct=5.0, fingerprints=True):
    return {
        "workload": "fig5_full",
        "executed_events": 400000,
        "events_off_per_sec": 2500000,
        "events_on_per_sec": 2500000 / (1 + overhead_pct / 100.0),
        "overhead_pct": overhead_pct,
        "trace_events_recorded": 700000,
        "fingerprints_identical": fingerprints,
    }


def attribution(overhead_pct=3.0, fingerprints=True):
    return {
        "workload": "fig5_full",
        "executed_events": 400000,
        "events_off_per_sec": 2500000,
        "events_on_per_sec": 2500000 / (1 + overhead_pct / 100.0),
        "overhead_pct": overhead_pct,
        "attribution_samples": 4000,
        "fingerprints_identical": fingerprints,
    }


def doc(workloads, smoke=False, suite_section=None, trace_section=None,
        attribution_section=None):
    d = {"harness": "perf_sim", "version": 1, "smoke": smoke,
         "repeat": 1, "workloads": workloads}
    if suite_section is not None:
        d["suite_wall_clock"] = suite_section
    if trace_section is not None:
        d["trace_overhead"] = trace_section
    if attribution_section is not None:
        d["attribution_overhead"] = attribution_section
    return d


class BenchDiffTest(unittest.TestCase):
    def run_diff(self, *argv):
        """Runs bench_diff.main with temp files; returns (exit_code, stdout)."""
        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = bench_diff.main(["bench_diff.py"] + list(argv))
        return code, out.getvalue()

    def write(self, document):
        f = tempfile.NamedTemporaryFile(
            mode="w", suffix=".json", delete=False)
        self.addCleanup(os.unlink, f.name)
        json.dump(document, f)
        f.close()
        return f.name

    def test_identical_files_pass(self):
        path = self.write(doc([workload("fig5_full")], suite_section=suite()))
        code, out = self.run_diff(path, path)
        self.assertEqual(code, 0)
        self.assertIn("OK", out)

    def test_events_per_sec_regression_fails(self):
        base = self.write(doc([workload("fig5_full", eps=50000.0)]))
        cand = self.write(doc([workload("fig5_full", eps=40000.0)]))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)

    def test_fingerprint_mismatch_fails_at_same_scale(self):
        base = self.write(doc([workload("fig5_full", events=1000)]))
        cand = self.write(doc([workload("fig5_full", events=1001)]))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("MISMATCH", out)

    def test_fingerprint_skipped_across_scales(self):
        base = self.write(doc([workload("fig5_full", events=1000)], smoke=True))
        cand = self.write(doc([workload("fig5_full", events=2000)], smoke=False))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("skipped (different scale)", out)

    def test_suite_wallclock_regression_gates_by_default(self):
        base = self.write(doc([workload("fig5_full")],
                              suite_section=suite(parallel=2.0)))
        cand = self.write(doc([workload("fig5_full")],
                              suite_section=suite(parallel=4.0)))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("parallel wall-clock", out)
        self.assertIn("REGRESSION", out)

    def test_ignore_wallclock_demotes_suite_slowdown(self):
        base = self.write(doc([workload("fig5_full")],
                              suite_section=suite(parallel=2.0)))
        cand = self.write(doc([workload("fig5_full")],
                              suite_section=suite(parallel=4.0)))
        code, out = self.run_diff(base, cand, "--ignore-wallclock")
        self.assertEqual(code, 0)
        self.assertIn("ignored by --ignore-wallclock", out)

    def test_suite_fingerprint_failure_gates_despite_flag(self):
        base = self.write(doc([workload("fig5_full")], suite_section=suite()))
        cand = self.write(doc([workload("fig5_full")],
                              suite_section=suite(fingerprints=False)))
        code, out = self.run_diff(base, cand, "--ignore-wallclock")
        self.assertEqual(code, 1)
        self.assertIn("DIFFER", out)

    def test_suite_run_count_change_skips_wallclock(self):
        base = self.write(doc([workload("fig5_full")],
                              suite_section=suite(runs=12, parallel=2.0)))
        cand = self.write(doc([workload("fig5_full")],
                              suite_section=suite(runs=4, parallel=9.0)))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("wall-clock comparison skipped", out)

    def test_missing_suite_sections_are_fine(self):
        base = self.write(doc([workload("fig5_full")]))
        cand = self.write(doc([workload("fig5_full")], suite_section=suite()))
        code, _ = self.run_diff(base, cand)
        self.assertEqual(code, 0)

    def test_self_mode_compares_suite_against_baseline_block(self):
        d = doc([workload("fig5_full")], suite_section=suite(parallel=5.0))
        d["baseline"] = {"smoke": False,
                        "workloads": [workload("fig5_full")],
                        "suite_wall_clock": suite(parallel=2.0)}
        path = self.write(d)
        code, out = self.run_diff(path)
        self.assertEqual(code, 1)
        self.assertIn("parallel wall-clock", out)
        code, _ = self.run_diff(path, "--ignore-wallclock")
        self.assertEqual(code, 0)

    def test_alloc_regression_fails(self):
        base = self.write(doc([workload("fig5_full", allocs_per_event=0.01)]))
        cand = self.write(doc([workload("fig5_full", allocs_per_event=0.02)]))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("ALLOC REGRESSION", out)

    def test_alloc_within_slack_passes(self):
        base = self.write(doc([workload("fig5_full", allocs_per_event=0.100)]))
        cand = self.write(doc([workload("fig5_full", allocs_per_event=0.105)]))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("allocs/ev", out)

    def test_alloc_improvement_passes(self):
        base = self.write(doc([workload("fig5_full", allocs_per_event=1.25)]))
        cand = self.write(doc([workload("fig5_full", allocs_per_event=0.07)]))
        code, _ = self.run_diff(base, cand)
        self.assertEqual(code, 0)

    def test_ignore_allocs_demotes_alloc_regression(self):
        base = self.write(doc([workload("fig5_full", allocs_per_event=0.01)]))
        cand = self.write(doc([workload("fig5_full", allocs_per_event=0.02)]))
        code, out = self.run_diff(base, cand, "--ignore-allocs")
        self.assertEqual(code, 0)
        self.assertIn("ignored by --ignore-allocs", out)

    def test_alloc_check_skipped_when_baseline_has_no_counts(self):
        base = self.write(doc([workload("fig5_full")]))
        cand = self.write(doc([workload("fig5_full", allocs_per_event=5.0)]))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertNotIn("ALLOC REGRESSION", out)

    def test_alloc_check_skipped_across_scales(self):
        base = self.write(doc([workload("fig5_full", allocs_per_event=0.01)],
                              smoke=True))
        cand = self.write(doc([workload("fig5_full", allocs_per_event=0.5)],
                              smoke=False))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("allocs skipped (different scale)", out)

    def test_zero_alloc_baseline_tolerates_epsilon_only(self):
        base = self.write(doc([workload("fig5_full", allocs_per_event=0.0)]))
        cand = self.write(doc([workload("fig5_full", allocs_per_event=0.0001)]))
        code, _ = self.run_diff(base, cand)
        self.assertEqual(code, 0)
        cand = self.write(doc([workload("fig5_full", allocs_per_event=0.01)]))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("ALLOC REGRESSION", out)

    def test_no_timing_keeps_deterministic_gates_only(self):
        # events/sec halved: ignored. Fingerprint + allocs still gate.
        base = self.write(doc([workload("fig5_full", eps=50000.0,
                                        allocs_per_event=0.01)],
                              suite_section=suite(parallel=2.0)))
        cand = self.write(doc([workload("fig5_full", eps=25000.0,
                                        allocs_per_event=0.01)],
                              suite_section=suite(parallel=9.0)))
        code, out = self.run_diff(base, cand, "--no-timing")
        self.assertEqual(code, 0)
        self.assertIn("ignored by --no-timing", out)

        bad_fp = self.write(doc([workload("fig5_full", events=1001,
                                          allocs_per_event=0.01)]))
        code, _ = self.run_diff(base, bad_fp, "--no-timing")
        self.assertEqual(code, 1)

        bad_alloc = self.write(doc([workload("fig5_full",
                                             allocs_per_event=0.9)]))
        code, out = self.run_diff(base, bad_alloc, "--no-timing")
        self.assertEqual(code, 1)
        self.assertIn("ALLOC REGRESSION", out)

    def test_wire_bytes_regression_fails(self):
        base = self.write(doc([workload("fig5_full",
                                        metadata_wire_bytes=1000000)]))
        cand = self.write(doc([workload("fig5_full",
                                        metadata_wire_bytes=1200000)]))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("WIRE REGRESSION", out)

    def test_total_wire_bytes_regression_fails(self):
        base = self.write(doc([workload("fig5_full", total_wire_bytes=5000000)]))
        cand = self.write(doc([workload("fig5_full", total_wire_bytes=6000000)]))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("WIRE REGRESSION", out)

    def test_wire_bytes_within_slack_passes(self):
        base = self.write(doc([workload("fig5_full",
                                        metadata_wire_bytes=1000000,
                                        total_wire_bytes=5000000)]))
        cand = self.write(doc([workload("fig5_full",
                                        metadata_wire_bytes=1050000,
                                        total_wire_bytes=5200000)]))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("meta wire", out)
        self.assertIn("total wire", out)

    def test_wire_bytes_improvement_passes(self):
        base = self.write(doc([workload("fig5_full",
                                        metadata_wire_bytes=5332256)]))
        cand = self.write(doc([workload("fig5_full",
                                        metadata_wire_bytes=1779928)]))
        code, _ = self.run_diff(base, cand)
        self.assertEqual(code, 0)

    def test_ignore_wire_bytes_demotes_regression(self):
        base = self.write(doc([workload("fig5_full",
                                        metadata_wire_bytes=1000000)]))
        cand = self.write(doc([workload("fig5_full",
                                        metadata_wire_bytes=2000000)]))
        code, out = self.run_diff(base, cand, "--ignore-wire-bytes")
        self.assertEqual(code, 0)
        self.assertIn("ignored by --ignore-wire-bytes", out)

    def test_wire_bytes_skipped_when_baseline_has_no_counts(self):
        base = self.write(doc([workload("fig5_full")]))
        cand = self.write(doc([workload("fig5_full",
                                        metadata_wire_bytes=9999999,
                                        total_wire_bytes=9999999)]))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertNotIn("WIRE REGRESSION", out)

    def test_wire_bytes_skipped_across_scales(self):
        base = self.write(doc([workload("fig5_full",
                                        metadata_wire_bytes=1000)],
                              smoke=True))
        cand = self.write(doc([workload("fig5_full",
                                        metadata_wire_bytes=9000000)],
                              smoke=False))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("wire bytes skipped (different scale)", out)

    def test_wire_bytes_gate_survives_no_timing(self):
        # Wire volume is deterministic, so --no-timing must not demote it.
        base = self.write(doc([workload("fig5_full",
                                        metadata_wire_bytes=1000000)]))
        cand = self.write(doc([workload("fig5_full",
                                        metadata_wire_bytes=2000000)]))
        code, out = self.run_diff(base, cand, "--no-timing")
        self.assertEqual(code, 1)
        self.assertIn("WIRE REGRESSION", out)

    def test_rss_regression_fails(self):
        base = self.write(doc([workload("mmusers", peak_rss_kb=96000)]))
        cand = self.write(doc([workload("mmusers", peak_rss_kb=120000)]))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("RSS REGRESSION", out)

    def test_rss_within_slack_passes(self):
        base = self.write(doc([workload("mmusers", peak_rss_kb=96000)]))
        cand = self.write(doc([workload("mmusers", peak_rss_kb=100000)]))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("rss 96000 -> 100000 kB", out)

    def test_rss_improvement_passes(self):
        base = self.write(doc([workload("mmusers", peak_rss_kb=96000)]))
        cand = self.write(doc([workload("mmusers", peak_rss_kb=48000)]))
        code, _ = self.run_diff(base, cand)
        self.assertEqual(code, 0)

    def test_ignore_rss_demotes_regression(self):
        base = self.write(doc([workload("mmusers", peak_rss_kb=96000)]))
        cand = self.write(doc([workload("mmusers", peak_rss_kb=200000)]))
        code, out = self.run_diff(base, cand, "--ignore-rss")
        self.assertEqual(code, 0)
        self.assertIn("ignored by --ignore-rss", out)

    def test_rss_skipped_when_baseline_has_no_counts(self):
        base = self.write(doc([workload("mmusers", peak_rss_kb=None)]))
        cand = self.write(doc([workload("mmusers", peak_rss_kb=999999)]))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertNotIn("RSS REGRESSION", out)

    def test_rss_skipped_across_scales(self):
        base = self.write(doc([workload("mmusers", peak_rss_kb=43000)],
                              smoke=True))
        cand = self.write(doc([workload("mmusers", peak_rss_kb=96000)],
                              smoke=False))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("rss skipped (different scale)", out)

    def test_rss_gate_survives_no_timing(self):
        # Peak RSS follows the deterministic allocation sequence, so
        # --no-timing must not demote it.
        base = self.write(doc([workload("mmusers", peak_rss_kb=96000)]))
        cand = self.write(doc([workload("mmusers", peak_rss_kb=150000)]))
        code, out = self.run_diff(base, cand, "--no-timing")
        self.assertEqual(code, 1)
        self.assertIn("RSS REGRESSION", out)

    def test_trace_overhead_regression_gates_by_default(self):
        base = self.write(doc([workload("fig5_full")],
                              trace_section=trace(overhead_pct=4.0)))
        cand = self.write(doc([workload("fig5_full")],
                              trace_section=trace(overhead_pct=25.0)))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("tracing on vs off", out)
        self.assertIn("REGRESSION", out)

    def test_trace_overhead_within_slack_passes(self):
        base = self.write(doc([workload("fig5_full")],
                              trace_section=trace(overhead_pct=4.0)))
        cand = self.write(doc([workload("fig5_full")],
                              trace_section=trace(overhead_pct=9.0)))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("tracing on vs off", out)

    def test_trace_overhead_obeys_no_timing(self):
        base = self.write(doc([workload("fig5_full")],
                              trace_section=trace(overhead_pct=4.0)))
        cand = self.write(doc([workload("fig5_full")],
                              trace_section=trace(overhead_pct=25.0)))
        code, out = self.run_diff(base, cand, "--no-timing")
        self.assertEqual(code, 0)
        self.assertIn("ignored by --no-timing", out)

    def test_trace_fingerprint_failure_always_gates(self):
        # Even with every timing gate off and no baseline section, a candidate
        # whose traced run diverged from its untraced run fails the diff.
        base = self.write(doc([workload("fig5_full")]))
        cand = self.write(doc([workload("fig5_full")],
                              trace_section=trace(fingerprints=False)))
        code, out = self.run_diff(base, cand, "--no-timing")
        self.assertEqual(code, 1)
        self.assertIn("DIFFER", out)

    def test_trace_overhead_skipped_across_scales(self):
        base = self.write(doc([workload("fig5_full")], smoke=True,
                              trace_section=trace(overhead_pct=4.0)))
        cand = self.write(doc([workload("fig5_full")], smoke=False,
                              trace_section=trace(overhead_pct=25.0)))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("overhead skipped (different scale)", out)

    def test_missing_trace_sections_are_fine(self):
        base = self.write(doc([workload("fig5_full")]))
        cand = self.write(doc([workload("fig5_full")],
                              trace_section=trace()))
        code, _ = self.run_diff(base, cand)
        self.assertEqual(code, 0)

    def test_attribution_overhead_regression_gates_by_default(self):
        base = self.write(doc([workload("fig5_full")],
                              attribution_section=attribution(overhead_pct=3.0)))
        cand = self.write(doc([workload("fig5_full")],
                              attribution_section=attribution(overhead_pct=20.0)))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 1)
        self.assertIn("profiler on vs off", out)
        self.assertIn("REGRESSION", out)

    def test_attribution_overhead_within_slack_passes(self):
        base = self.write(doc([workload("fig5_full")],
                              attribution_section=attribution(overhead_pct=3.0)))
        cand = self.write(doc([workload("fig5_full")],
                              attribution_section=attribution(overhead_pct=9.0)))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("profiler on vs off", out)

    def test_attribution_overhead_obeys_no_timing(self):
        base = self.write(doc([workload("fig5_full")],
                              attribution_section=attribution(overhead_pct=3.0)))
        cand = self.write(doc([workload("fig5_full")],
                              attribution_section=attribution(overhead_pct=20.0)))
        code, out = self.run_diff(base, cand, "--no-timing")
        self.assertEqual(code, 0)
        self.assertIn("ignored by --no-timing", out)

    def test_attribution_fingerprint_failure_always_gates(self):
        # A candidate whose profiled run diverged from its bare run fails the
        # diff even with --no-timing and no baseline section.
        base = self.write(doc([workload("fig5_full")]))
        cand = self.write(doc([workload("fig5_full")],
                              attribution_section=attribution(
                                  fingerprints=False)))
        code, out = self.run_diff(base, cand, "--no-timing")
        self.assertEqual(code, 1)
        self.assertIn("DIFFER", out)

    def test_attribution_overhead_skipped_across_scales(self):
        base = self.write(doc([workload("fig5_full")], smoke=True,
                              attribution_section=attribution(overhead_pct=3.0)))
        cand = self.write(doc([workload("fig5_full")], smoke=False,
                              attribution_section=attribution(overhead_pct=20.0)))
        code, out = self.run_diff(base, cand)
        self.assertEqual(code, 0)
        self.assertIn("overhead skipped (different scale)", out)

    def test_missing_attribution_sections_are_fine(self):
        base = self.write(doc([workload("fig5_full")]))
        cand = self.write(doc([workload("fig5_full")],
                              attribution_section=attribution()))
        code, _ = self.run_diff(base, cand)
        self.assertEqual(code, 0)

    def test_threshold_tolerates_small_wallclock_noise(self):
        base = self.write(doc([workload("fig5_full")],
                              suite_section=suite(parallel=2.0)))
        cand = self.write(doc([workload("fig5_full")],
                              suite_section=suite(parallel=2.06)))
        code, _ = self.run_diff(base, cand)
        self.assertEqual(code, 0)


if __name__ == "__main__":
    unittest.main()
