#!/usr/bin/env python3
"""Unit tests for telemetry_report.py."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import telemetry_report  # noqa: E402

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "telemetry_report.py")


def hist(count=10, mean=1.0):
    return {"count": count, "mean_ms": mean, "p50_ms": mean,
            "p90_ms": 2 * mean, "p99_ms": 3 * mean, "min_ms": 0.0,
            "max_ms": 4 * mean}


def window(start, end, scalars=None, hists=None):
    return {"start_us": start, "end_us": end,
            "scalars": {"ops": 100.0} if scalars is None else scalars,
            "histograms": {"lat": hist()} if hists is None else hists}


def doc(windows=None, attribution=None):
    d = {"schema": telemetry_report.SCHEMA, "window_us": 1000,
         "windows": [window(0, 1000), window(1000, 2000)]
         if windows is None else windows}
    if attribution is not None:
        d["attribution"] = attribution
    return d


def attribution(samples=5, pairs=None):
    phases = {name: hist() for name in
              telemetry_report.PHASE_ORDER + ("total", "tree_hop")}
    return {"samples": samples, "phases": phases,
            "pairs": [] if pairs is None else pairs}


def pair(src=0, dst=1):
    return {"src": src, "dst": dst, "total": hist(),
            "phases": {name: hist() for name in telemetry_report.PHASE_ORDER}}


class ValidateTest(unittest.TestCase):
    def test_minimal_valid_document(self):
        self.assertEqual(telemetry_report.validate(doc(windows=[])), [])

    def test_full_valid_document(self):
        d = doc(attribution=attribution(pairs=[pair(), pair(1, 0)]))
        self.assertEqual(telemetry_report.validate(d), [])

    def test_rejects_non_object_document(self):
        self.assertTrue(telemetry_report.validate([]))

    def test_rejects_wrong_schema(self):
        d = doc()
        d["schema"] = "saturn-timeseries-v0"
        errors = telemetry_report.validate(d)
        self.assertTrue(any("schema" in e for e in errors))

    def test_rejects_missing_window_us(self):
        d = doc()
        del d["window_us"]
        errors = telemetry_report.validate(d)
        self.assertTrue(any("window_us" in e for e in errors))

    def test_rejects_missing_windows(self):
        errors = telemetry_report.validate(
            {"schema": telemetry_report.SCHEMA, "window_us": 1000})
        self.assertTrue(any("windows" in e for e in errors))

    def test_rejects_window_gap(self):
        d = doc(windows=[window(0, 1000), window(1500, 2500)])
        errors = telemetry_report.validate(d)
        self.assertTrue(any("previous window ended" in e for e in errors))

    def test_rejects_inverted_window(self):
        errors = telemetry_report.validate(doc(windows=[window(1000, 1000)]))
        self.assertTrue(any("start_us < end_us" in e for e in errors))

    def test_rejects_non_numeric_scalar(self):
        d = doc(windows=[window(0, 1000, scalars={"ops": "many"})])
        errors = telemetry_report.validate(d)
        self.assertTrue(any("not numeric" in e for e in errors))

    def test_rejects_scalar_name_drift(self):
        d = doc(windows=[window(0, 1000, scalars={"a": 1}),
                         window(1000, 2000, scalars={"b": 1})])
        errors = telemetry_report.validate(d)
        self.assertTrue(any("scalar names differ" in e for e in errors))

    def test_rejects_incomplete_histogram(self):
        bad = hist()
        del bad["p99_ms"]
        d = doc(windows=[window(0, 1000, hists={"lat": bad})])
        errors = telemetry_report.validate(d)
        self.assertTrue(any("p99_ms" in e for e in errors))

    def test_rejects_attribution_missing_phase(self):
        attr = attribution()
        del attr["phases"]["serializer"]
        errors = telemetry_report.validate(doc(attribution=attr))
        self.assertTrue(any("missing phase 'serializer'" in e for e in errors))

    def test_rejects_attribution_bad_pair(self):
        attr = attribution(pairs=[{"src": 0}])
        errors = telemetry_report.validate(doc(attribution=attr))
        self.assertTrue(any("integer src and dst" in e for e in errors))

    def test_rejects_negative_samples(self):
        attr = attribution(samples=-1)
        errors = telemetry_report.validate(doc(attribution=attr))
        self.assertTrue(any("samples" in e for e in errors))


class RenderTest(unittest.TestCase):
    def test_renders_all_sections(self):
        d = doc(attribution=attribution(pairs=[pair()]))
        out = telemetry_report.render(d)
        self.assertIn("<svg", out)
        self.assertIn("ops", out)
        self.assertIn("Visibility attribution", out)
        self.assertIn("serializer", out)
        self.assertIn("0 &rarr; 1", out)

    def test_renders_without_attribution(self):
        out = telemetry_report.render(doc())
        self.assertNotIn("Visibility attribution", out)
        self.assertIn("<svg", out)

    def test_renders_empty_windows(self):
        out = telemetry_report.render(doc(windows=[]))
        self.assertIn("0 windows", out)

    def test_single_window_chart(self):
        out = telemetry_report.render(doc(windows=[window(0, 1000)]))
        self.assertIn("polyline", out)

    def test_escapes_metric_names(self):
        d = doc(windows=[window(0, 1000, scalars={"a<b": 1.0})])
        out = telemetry_report.render(d)
        self.assertIn("a&lt;b", out)
        self.assertNotIn("a<b", out)

    def test_zero_count_histogram_skipped(self):
        d = doc(windows=[window(0, 1000, hists={"idle": hist(count=0)})])
        out = telemetry_report.render(d)
        self.assertNotIn("idle", out)


class MainTest(unittest.TestCase):
    def run_main(self, d, *flags):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "ts.json")
            with open(path, "w") as f:
                json.dump(d, f)
            proc = subprocess.run(
                [sys.executable, SCRIPT] + list(flags) + [path],
                capture_output=True, text=True)
            html_path = os.path.splitext(path)[0] + ".html"
            html_out = None
            if os.path.exists(html_path):
                with open(html_path) as f:
                    html_out = f.read()
        return proc.returncode, proc.stdout, html_out

    def test_check_mode_writes_nothing(self):
        code, out, html_out = self.run_main(doc(), "--check")
        self.assertEqual(code, 0)
        self.assertIn("OK", out)
        self.assertIsNone(html_out)

    def test_writes_report_next_to_input(self):
        code, out, html_out = self.run_main(doc())
        self.assertEqual(code, 0)
        self.assertIn(".html", out)
        self.assertIn("<svg", html_out)

    def test_invalid_document_exits_one(self):
        code, out, _ = self.run_main({"schema": "bogus"})
        self.assertEqual(code, 1)
        self.assertIn("schema", out)

    def test_unparseable_file_exits_one(self):
        with tempfile.NamedTemporaryFile("w", suffix=".json",
                                         delete=False) as f:
            f.write("{not json")
            path = f.name
        try:
            proc = subprocess.run([sys.executable, SCRIPT, path],
                                  capture_output=True, text=True)
            self.assertEqual(proc.returncode, 1)
            self.assertIn("cannot load", proc.stdout)
        finally:
            os.unlink(path)

    def test_no_arguments_exits_two(self):
        proc = subprocess.run([sys.executable, SCRIPT],
                              capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()
